package mobility

import (
	"math"
	"math/rand/v2"
	"testing"

	"impatience/internal/trace"
)

func newRNG(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, seed+999)) }

func testCfg() RWPConfig {
	return RWPConfig{
		Nodes:    10,
		Width:    2000,
		Height:   2000,
		MinSpeed: 200, // m/min (~12 km/h)
		MaxSpeed: 800,
		MaxPause: 2,
	}
}

func TestConfigValidate(t *testing.T) {
	good := testCfg()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []RWPConfig{
		{Nodes: 0, Width: 1, Height: 1, MinSpeed: 1, MaxSpeed: 2},
		{Nodes: 1, Width: 0, Height: 1, MinSpeed: 1, MaxSpeed: 2},
		{Nodes: 1, Width: 1, Height: 1, MinSpeed: 0, MaxSpeed: 2},
		{Nodes: 1, Width: 1, Height: 1, MinSpeed: 3, MaxSpeed: 2},
		{Nodes: 1, Width: 1, Height: 1, MinSpeed: 1, MaxSpeed: 2, MaxPause: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestPositionsStayInBounds(t *testing.T) {
	cfg := testCfg()
	r, err := NewRWP(cfg, newRNG(1))
	if err != nil {
		t.Fatalf("NewRWP: %v", err)
	}
	for step := 0; step < 500; step++ {
		r.Advance(0.5)
		for i := 0; i < cfg.Nodes; i++ {
			p := r.Position(i)
			if p.X < -1e-9 || p.X > cfg.Width+1e-9 || p.Y < -1e-9 || p.Y > cfg.Height+1e-9 {
				t.Fatalf("node %d out of bounds at %v", i, p)
			}
		}
	}
}

func TestSpeedRespected(t *testing.T) {
	cfg := testCfg()
	cfg.MaxPause = 0 // keep nodes moving
	r, err := NewRWP(cfg, newRNG(2))
	if err != nil {
		t.Fatalf("NewRWP: %v", err)
	}
	const dt = 0.1
	for step := 0; step < 2000; step++ {
		before := make([]Point, cfg.Nodes)
		for i := range before {
			before[i] = r.Position(i)
		}
		r.Advance(dt)
		for i := range before {
			d := before[i].Dist(r.Position(i))
			if d > cfg.MaxSpeed*dt*(1+1e-9) {
				t.Fatalf("node %d moved %gm in %gmin (max %g)", i, d, dt, cfg.MaxSpeed*dt)
			}
		}
	}
}

func TestNodesActuallyMove(t *testing.T) {
	r, err := NewRWP(testCfg(), newRNG(3))
	if err != nil {
		t.Fatalf("NewRWP: %v", err)
	}
	start := make([]Point, testCfg().Nodes)
	for i := range start {
		start[i] = r.Position(i)
	}
	r.Advance(30)
	moved := 0
	for i := range start {
		if start[i].Dist(r.Position(i)) > 100 {
			moved++
		}
	}
	if moved < len(start)/2 {
		t.Errorf("only %d/%d nodes moved substantially in 30 min", moved, len(start))
	}
}

func TestClockAdvances(t *testing.T) {
	r, _ := NewRWP(testCfg(), newRNG(4))
	r.Advance(5)
	r.Advance(2.5)
	if math.Abs(r.Now()-7.5) > 1e-12 {
		t.Errorf("Now=%g, want 7.5", r.Now())
	}
}

func TestExtractContactsValid(t *testing.T) {
	cfg := testCfg()
	r, _ := NewRWP(cfg, newRNG(5))
	tr, err := ExtractContacts(r, 300, 0.5, 200)
	if err != nil {
		t.Fatalf("ExtractContacts: %v", err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("invalid trace: %v", err)
	}
	if len(tr.Contacts) == 0 {
		t.Fatal("no contacts extracted in a dense area")
	}
	if tr.Nodes != cfg.Nodes || tr.Duration != 300 {
		t.Errorf("trace header %d/%g", tr.Nodes, tr.Duration)
	}
}

func TestExtractContactsRisingEdgeOnly(t *testing.T) {
	// Two nodes in a tiny area with slow speed stay in range nearly all
	// the time: the number of events must be far below the number of
	// samples (no per-sample repeat events).
	cfg := RWPConfig{Nodes: 2, Width: 100, Height: 100, MinSpeed: 10, MaxSpeed: 20}
	r, _ := NewRWP(cfg, newRNG(6))
	tr, err := ExtractContacts(r, 1000, 1, 200) // radius exceeds the area diagonal
	if err != nil {
		t.Fatalf("ExtractContacts: %v", err)
	}
	if len(tr.Contacts) != 1 {
		t.Errorf("always-in-range pair produced %d events, want exactly 1", len(tr.Contacts))
	}
}

func TestExtractContactsParamValidation(t *testing.T) {
	r, _ := NewRWP(testCfg(), newRNG(7))
	if _, err := ExtractContacts(r, 0, 1, 200); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := ExtractContacts(r, 10, 0, 200); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := ExtractContacts(r, 10, 1, 0); err == nil {
		t.Error("zero radius accepted")
	}
}

func TestExtractContactsHeterogeneous(t *testing.T) {
	// A large sparse area must yield heterogeneous pairwise rates (CV of
	// per-pair counts > 0) and bursty inter-contacts — the properties the
	// vehicular experiments rely on.
	cfg := RWPConfig{Nodes: 20, Width: 10000, Height: 10000, MinSpeed: 300, MaxSpeed: 1000, MaxPause: 5}
	r, _ := NewRWP(cfg, newRNG(8))
	tr, err := ExtractContacts(r, 1440, 0.5, 200)
	if err != nil {
		t.Fatalf("ExtractContacts: %v", err)
	}
	if len(tr.Contacts) < 20 {
		t.Skipf("too sparse for assertions: %d contacts", len(tr.Contacts))
	}
	rm := trace.EmpiricalRates(tr)
	rates := rm.Rates()
	var mean, ss float64
	for _, v := range rates {
		mean += v
	}
	mean /= float64(len(rates))
	for _, v := range rates {
		ss += (v - mean) * (v - mean)
	}
	if ss == 0 {
		t.Error("pairwise rates perfectly homogeneous; expected heterogeneity")
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	mk := func() *trace.Trace {
		r, _ := NewRWP(testCfg(), newRNG(99))
		tr, _ := ExtractContacts(r, 100, 0.5, 200)
		return tr
	}
	a, b := mk(), mk()
	if len(a.Contacts) != len(b.Contacts) {
		t.Fatalf("nondeterministic: %d vs %d contacts", len(a.Contacts), len(b.Contacts))
	}
	for i := range a.Contacts {
		if a.Contacts[i] != b.Contacts[i] {
			t.Fatalf("contact %d differs", i)
		}
	}
}
