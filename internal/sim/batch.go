package sim

import (
	"fmt"

	"impatience/internal/trace"
)

// RunBatch executes M independent simulations in lockstep over one shared
// contact stream: every configuration gets its own runner — caches, policy,
// demand process, fault timeline, RNGs — and each contact drawn from the
// source is fed to every runner in configuration order before the next is
// drawn. One trial therefore costs one trace generation and one pass in
// O(1) contact memory, instead of the k scheme-passes over a materialized
// O(N²·µ·T) slice the sequential harness pays.
//
// Determinism: a runner's RNG streams are seeded exactly as in Run (from
// its own cfg.Seed), its policy and fault state are private, and step is
// the same hot path both entry points share — so Results[i] is
// bit-identical to Run(cfgs[i]) driven by the same contact sequence. That
// equivalence is the correctness anchor the batch digest tests pin.
//
// Batch configs must leave Trace and Contacts unset; the shared source
// drives every runner and supplies the common (nodes, duration). Contacts
// are contract-checked once per contact here — not once per runner — and
// a mid-stream source error aborts the whole batch.
func RunBatch(cfgs []Config, contacts trace.Source) ([]*Result, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("sim: empty batch")
	}
	if contacts == nil {
		return nil, fmt.Errorf("sim: nil contact source")
	}
	nodes, duration := contacts.Nodes(), contacts.Duration()
	runners := make([]*runner, len(cfgs))
	for i := range cfgs {
		cfg := cfgs[i] // private copy, as Run takes cfg by value
		if err := validateBatch(&cfg, nodes, duration); err != nil {
			return nil, fmt.Errorf("sim: batch config %d: %w", i, err)
		}
		r, err := buildRunner(&cfg, nodes, duration)
		if err != nil {
			return nil, fmt.Errorf("sim: batch config %d: %w", i, err)
		}
		r.checked = true // the driver loop below validates each contact once
		runners[i] = r
	}
	// Contacts are drawn in batches through the trace.BulkSource seam
	// (buffering only — the source consumes its RNG in the identical
	// order, so the sequence and every runner's digest are unchanged) and
	// each is validated once, then fed to every runner.
	prevT := 0.0
	buf := make([]trace.Contact, contactBatchSize)
	for {
		n := trace.FillBatch(contacts, buf)
		if n == 0 {
			break
		}
		for k := range buf[:n] {
			c := buf[k]
			if err := trace.CheckStreamContact(c, prevT, nodes, duration); err != nil {
				return nil, err
			}
			prevT = c.T
			for _, r := range runners {
				if err := r.step(c); err != nil {
					return nil, err
				}
			}
		}
	}
	if es, ok := contacts.(trace.ErrSource); ok {
		if err := es.Err(); err != nil {
			return nil, err
		}
	}
	results := make([]*Result, len(runners))
	for i, r := range runners {
		res, err := r.finish()
		if err != nil {
			return nil, fmt.Errorf("sim: batch config %d: %w", i, err)
		}
		results[i] = res
	}
	return results, nil
}
