package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBisect(t *testing.T) {
	tests := []struct {
		name string
		f    func(float64) float64
		a, b float64
		want float64
	}{
		{"linear", func(x float64) float64 { return x - 2 }, 0, 10, 2},
		{"quadratic", func(x float64) float64 { return x*x - 9 }, 0, 10, 3},
		{"cosine", math.Cos, 0, 3, math.Pi / 2},
		{"exp", func(x float64) float64 { return math.Exp(x) - 5 }, 0, 10, math.Log(5)},
		{"root at a", func(x float64) float64 { return x }, 0, 1, 0},
		{"root at b", func(x float64) float64 { return x - 1 }, 0, 1, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Bisect(tt.f, tt.a, tt.b, 1e-12)
			if err != nil {
				t.Fatalf("Bisect: %v", err)
			}
			if math.Abs(got-tt.want) > 1e-9 {
				t.Errorf("got %g, want %g", got, tt.want)
			}
		})
	}
}

func TestBisectNoBracket(t *testing.T) {
	if _, err := Bisect(func(x float64) float64 { return x*x + 1 }, -5, 5, 1e-12); err != ErrNoBracket {
		t.Errorf("got err=%v, want ErrNoBracket", err)
	}
}

func TestInvertDecreasing(t *testing.T) {
	tests := []struct {
		name   string
		f      func(float64) float64
		target float64
		want   float64
	}{
		{"reciprocal", func(x float64) float64 { return 1 / x }, 4, 0.25},
		{"exp decay", func(x float64) float64 { return math.Exp(-x) }, 0.1, -math.Log(0.1)},
		{"power", func(x float64) float64 { return math.Pow(x, -2) }, 16, 0.25},
		{"shifted", func(x float64) float64 { return 10 - x }, 3, 7},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := InvertDecreasing(tt.f, tt.target, 1)
			if err != nil {
				t.Fatalf("InvertDecreasing: %v", err)
			}
			if math.Abs(got-tt.want) > 1e-8*math.Max(1, tt.want) {
				t.Errorf("got %g, want %g", got, tt.want)
			}
		})
	}
}

// Property: InvertDecreasing is a true inverse for the ϕ-like family
// f(x) = c·x^{-p} over a broad range of targets and starting guesses.
func TestInvertDecreasingProperty(t *testing.T) {
	prop := func(cRaw, pRaw, targetRaw, x0Raw float64) bool {
		c := 0.1 + math.Abs(math.Mod(cRaw, 10))
		p := 0.2 + math.Abs(math.Mod(pRaw, 3))
		target := 0.01 + math.Abs(math.Mod(targetRaw, 100))
		x0 := 0.01 + math.Abs(math.Mod(x0Raw, 50))
		f := func(x float64) float64 { return c * math.Pow(x, -p) }
		x, err := InvertDecreasing(f, target, x0)
		if err != nil {
			return false
		}
		return almostEqual(f(x), target, 1e-6)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRK4Exponential(t *testing.T) {
	// dx/dt = -x, x(0)=1 → x(t)=e^{-t}.
	f := func(_ float64, x, dst []float64) { dst[0] = -x[0] }
	got := RK4(f, []float64{1}, 0, 2, 200)
	if !almostEqual(got[0], math.Exp(-2), 1e-7) {
		t.Errorf("got %g, want %g", got[0], math.Exp(-2))
	}
}

func TestRK4Harmonic(t *testing.T) {
	// x'' = -x as a system: x(t)=cos t, v(t)=-sin t.
	f := func(_ float64, x, dst []float64) { dst[0] = x[1]; dst[1] = -x[0] }
	got := RK4(f, []float64{1, 0}, 0, math.Pi, 1000)
	if !almostEqual(got[0], -1, 1e-6) || math.Abs(got[1]) > 1e-6 {
		t.Errorf("got (%g,%g), want (-1,0)", got[0], got[1])
	}
}

func TestRK4DoesNotModifyInput(t *testing.T) {
	f := func(_ float64, x, dst []float64) { dst[0] = 1 }
	x0 := []float64{42}
	RK4(f, x0, 0, 1, 10)
	if x0[0] != 42 {
		t.Errorf("input state modified: %g", x0[0])
	}
}

func TestRK4UntilStopsEarly(t *testing.T) {
	f := func(_ float64, x, dst []float64) { dst[0] = 1 }
	x, tEnd := RK4Until(f, []float64{0}, 0, 100, 0.5, func(_ float64, x []float64) bool { return x[0] >= 3 })
	if tEnd >= 100 {
		t.Errorf("did not stop early: t=%g", tEnd)
	}
	if x[0] < 3 {
		t.Errorf("stopped before predicate: x=%g", x[0])
	}
}

func TestWaterFillUniform(t *testing.T) {
	// Equal weights, log-like derivative → equal split.
	p := WaterFillProblem{
		Weights: []float64{1, 1, 1, 1},
		Caps:    []float64{100, 100, 100, 100},
		Budget:  20,
		Deriv:   func(x float64) float64 { return 1 / x },
	}
	x, err := WaterFill(p)
	if err != nil {
		t.Fatalf("WaterFill: %v", err)
	}
	for i, v := range x {
		if !almostEqual(v, 5, 1e-6) {
			t.Errorf("x[%d]=%g, want 5", i, v)
		}
	}
}

func TestWaterFillProportional(t *testing.T) {
	// Deriv(x)=1/x makes the optimum proportional to the weights
	// (balance: w_i/x_i = λ ⇒ x_i ∝ w_i).
	p := WaterFillProblem{
		Weights: []float64{4, 2, 1, 1},
		Caps:    []float64{1000, 1000, 1000, 1000},
		Budget:  16,
		Deriv:   func(x float64) float64 { return 1 / x },
	}
	x, err := WaterFill(p)
	if err != nil {
		t.Fatalf("WaterFill: %v", err)
	}
	want := []float64{8, 4, 2, 2}
	for i := range x {
		if !almostEqual(x[i], want[i], 1e-6) {
			t.Errorf("x[%d]=%g, want %g", i, x[i], want[i])
		}
	}
}

func TestWaterFillCaps(t *testing.T) {
	// A dominant weight saturates at its cap; the rest share the remainder.
	p := WaterFillProblem{
		Weights: []float64{100, 1, 1},
		Caps:    []float64{3, 50, 50},
		Budget:  13,
		Deriv:   func(x float64) float64 { return 1 / x },
	}
	x, err := WaterFill(p)
	if err != nil {
		t.Fatalf("WaterFill: %v", err)
	}
	if !almostEqual(x[0], 3, 1e-6) {
		t.Errorf("x[0]=%g, want cap 3", x[0])
	}
	if !almostEqual(x[1], 5, 1e-6) || !almostEqual(x[2], 5, 1e-6) {
		t.Errorf("x[1:]=%v, want 5,5", x[1:])
	}
}

func TestWaterFillBudgetEqualsCapSum(t *testing.T) {
	p := WaterFillProblem{
		Weights: []float64{1, 2},
		Caps:    []float64{3, 4},
		Budget:  7,
		Deriv:   func(x float64) float64 { return 1 / x },
	}
	x, err := WaterFill(p)
	if err != nil {
		t.Fatalf("WaterFill: %v", err)
	}
	if !almostEqual(x[0], 3, 1e-9) || !almostEqual(x[1], 4, 1e-9) {
		t.Errorf("x=%v, want caps", x)
	}
}

func TestWaterFillInfeasible(t *testing.T) {
	p := WaterFillProblem{
		Weights: []float64{1},
		Caps:    []float64{1},
		Budget:  2,
		Deriv:   func(x float64) float64 { return 1 / x },
	}
	if _, err := WaterFill(p); err != ErrInfeasible {
		t.Errorf("got err=%v, want ErrInfeasible", err)
	}
}

func TestWaterFillZeroBudget(t *testing.T) {
	p := WaterFillProblem{
		Weights: []float64{1, 1},
		Caps:    []float64{5, 5},
		Budget:  0,
		Deriv:   func(x float64) float64 { return 1 / x },
	}
	x, err := WaterFill(p)
	if err != nil {
		t.Fatalf("WaterFill: %v", err)
	}
	if x[0] != 0 || x[1] != 0 {
		t.Errorf("x=%v, want zeros", x)
	}
}

// Property: the water-filled solution exhausts the budget, respects caps,
// and satisfies the Property-1 balance condition on interior coordinates.
func TestWaterFillBalanceProperty(t *testing.T) {
	prop := func(seedW [5]float64, budgetRaw, pRaw float64) bool {
		w := make([]float64, 5)
		caps := make([]float64, 5)
		var capSum float64
		for i := range w {
			w[i] = 0.1 + math.Abs(math.Mod(seedW[i], 10))
			caps[i] = 40
			capSum += caps[i]
		}
		budget := 1 + math.Abs(math.Mod(budgetRaw, capSum-2))
		p := 0.3 + math.Abs(math.Mod(pRaw, 2))
		deriv := func(x float64) float64 { return math.Pow(x, -p) }
		x, err := WaterFill(WaterFillProblem{Weights: w, Caps: caps, Budget: budget, Deriv: deriv})
		if err != nil {
			return false
		}
		var total float64
		for i, v := range x {
			if v < -1e-9 || v > caps[i]+1e-9 {
				return false
			}
			total += v
		}
		if !almostEqual(total, budget, 1e-6) {
			return false
		}
		// Balance condition over interior coordinates.
		var lambda float64
		var seen bool
		for i, v := range x {
			if v > 1e-9 && v < caps[i]-1e-6 {
				m := w[i] * deriv(v)
				if !seen {
					lambda, seen = m, true
				} else if !almostEqual(m, lambda, 1e-4) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
