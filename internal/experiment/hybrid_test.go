package experiment

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"impatience/internal/rates"
	"impatience/internal/utility"
)

// hybridTiny pairs a scenario with communities large enough for the
// fluid limit to be meaningful at test cost (two 100-node blocks).
func hybridTiny(t *testing.T) (Scenario, *rates.Model) {
	t.Helper()
	sc := Default()
	sc.Nodes = 200
	sc.Items = 10
	sc.Rho = 2
	sc.Duration = 800
	sc.Trials = 2
	sc.Hybrid.Enabled = true
	m, err := rates.New([]int{100, 100}, [][]float64{{0.02, 0.004}, {0.004, 0.03}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return sc, m
}

// TestHybridScaleReport: the hybrid branch of StructuredScale stamps its
// provenance — fluid fraction, demotion count, probe contact volume —
// into the report the benchmark rows are built from.
func TestHybridScaleReport(t *testing.T) {
	sc, m := hybridTiny(t)
	rep, err := sc.StructuredScale(utility.Step{Tau: 10}, m, []string{SchemeQCR, SchemeUNI}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Hybrid {
		t.Fatal("report not marked hybrid")
	}
	if rep.FluidFraction <= 0.5 || rep.FluidFraction > 1 {
		t.Errorf("fluid fraction %g, want most of the population on the fluid", rep.FluidFraction)
	}
	if rep.Demotions != 0 {
		t.Errorf("%d demotions in a stationary run", rep.Demotions)
	}
	if rep.Contacts <= 0 {
		t.Error("no probe contacts metered")
	}
	if rep.PeakHeapBytes == 0 {
		t.Error("peak heap not sampled")
	}
	for k, v := range rep.AvgUtility {
		if v <= 0 {
			t.Errorf("scheme %s utility %g", rep.Schemes[k], v)
		}
	}
}

// TestHybridComparisonWorkerInvariance: the hybrid trial path must stay
// bit-identical across worker counts, like every other runner on the
// parallel trial engine, and must not respond to the shard knob (the
// fluid path has no shards).
func TestHybridComparisonWorkerInvariance(t *testing.T) {
	run := func(workers, shards int) *Comparison {
		t.Helper()
		sc, m := hybridTiny(t)
		sc.Workers = workers
		sc.Shards = shards
		cmp, err := sc.RunStructuredComparison(utility.Step{Tau: 10}, m, []string{SchemeQCR, SchemeUNI})
		if err != nil {
			t.Fatal(err)
		}
		return cmp
	}
	ref := run(1, 1)
	for _, s := range []string{SchemeQCR, SchemeUNI} {
		if ref.Utility[s].N != 2 || ref.Utility[s].Mean <= 0 {
			t.Fatalf("%s summary %+v", s, ref.Utility[s])
		}
	}
	if got := run(4, 1); !reflect.DeepEqual(ref, got) {
		t.Errorf("workers=4 differs:\nref %+v\ngot %+v", ref, got)
	}
	if got := run(1, 4); !reflect.DeepEqual(ref, got) {
		t.Errorf("shards=4 differs:\nref %+v\ngot %+v", ref, got)
	}
}

// TestHybridOffMatchesEventPath: a zero-valued Hybrid option set must
// route StructuredScale through the exact event executor — digest family
// and all — that a scenario without the field produces. Together with
// the pinned golden digests this is the hybrid-off identity guarantee.
func TestHybridOffMatchesEventPath(t *testing.T) {
	sc, m := hybridTiny(t)
	sc.Hybrid.Enabled = false
	off, err := sc.StructuredScale(utility.Step{Tau: 10}, m, []string{SchemeQCR, SchemeUNI}, 0)
	if err != nil {
		t.Fatal(err)
	}
	sc2, _ := hybridTiny(t)
	sc2.Hybrid = Default().Hybrid // the untouched zero value
	ref, err := sc2.StructuredScale(utility.Step{Tau: 10}, m, []string{SchemeQCR, SchemeUNI}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if off.Hybrid || ref.Hybrid {
		t.Fatal("event-path report marked hybrid")
	}
	if off.DigestFamily != ref.DigestFamily {
		t.Errorf("digest family %#x vs %#x with hybrid off", off.DigestFamily, ref.DigestFamily)
	}
}

const hybridGoldenPath = "testdata/hybrid_digests.json"

// TestHybridDigestsPinned is the hybrid twin of TestGoldenDigestsPinned,
// kept in its own testdata file so the event-path pin stays byte-for-byte
// what earlier releases committed. Refresh after an intended change:
//
//	go test ./internal/experiment -run TestHybridDigestsPinned -update
func TestHybridDigestsPinned(t *testing.T) {
	sc, m := hybridTiny(t)
	got := make(map[string]string)
	for _, tc := range []struct {
		name    string
		schemes []string
	}{
		{"hybrid-qcr-uni", []string{SchemeQCR, SchemeUNI}},
		{"hybrid-statics", []string{SchemeUNI, SchemePROP, SchemeDOM}},
	} {
		rep, err := sc.StructuredScale(utility.Step{Tau: 10}, m, tc.schemes, 0)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		got[tc.name] = fmt.Sprintf("%#016x", rep.DigestFamily)
	}
	if *update {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(hybridGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(hybridGoldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", hybridGoldenPath)
		return
	}
	data, err := os.ReadFile(hybridGoldenPath)
	if err != nil {
		t.Fatalf("read %s (regenerate with -update): %v", hybridGoldenPath, err)
	}
	var want map[string]string
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parse %s: %v", hybridGoldenPath, err)
	}
	for name, g := range got {
		w, ok := want[name]
		if !ok {
			t.Errorf("%s: no pinned digest for %q (rerun with -update)", hybridGoldenPath, name)
			continue
		}
		if g != w {
			t.Errorf("%s: digest %s, pinned %s — hybrid behavior changed; if intended, rerun with -update and commit", name, g, w)
		}
	}
}

// TestHybridFigure3Pipeline exercises the at-scale figure family on a
// tiny model: tables assemble, the expected-utility series is populated,
// and the provenance table reports a fluid run.
func TestHybridFigure3Pipeline(t *testing.T) {
	sc, m := hybridTiny(t)
	tables, err := HybridFigure3(sc, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 4 {
		t.Fatalf("%d tables", len(tables))
	}
	for _, tb := range tables {
		if len(tb.X) == 0 || len(tb.Columns) == 0 {
			t.Errorf("table %q empty", tb.Title)
		}
	}
	prov := tables[3]
	for i := range prov.X {
		if prov.Columns[0].Y[i] <= 0 {
			t.Errorf("trial %d fluid fraction %g", i, prov.Columns[0].Y[i])
		}
		if prov.Columns[1].Y[i] != 0 {
			t.Errorf("trial %d demoted", i)
		}
	}
}
