package sim

import (
	"math"
	"testing"

	"impatience/internal/alloc"
	"impatience/internal/contact"
	"impatience/internal/core"
	"impatience/internal/demand"
	"impatience/internal/utility"
	"impatience/internal/welfare"
)

// Dedicated-node case (C ∩ S = ∅): a few kiosk-like servers cache
// content, everyone else only requests. This mode admits the unbounded
// utilities (inverse power, neglog).

func TestDedicatedBasics(t *testing.T) {
	const (
		nodes   = 20
		servers = 5
		items   = 8
		rho     = 2
	)
	tr := smallTrace(t, nodes, 0.08, 2000, 31)
	cfg := Config{
		Rho: rho, Utility: utility.NegLog{}, Pop: demand.Pareto(items, 1, 1),
		Trace: tr, Policy: core.Static{}, Seed: 7,
		ServerCount: servers,
		Initial:     alloc.Uniform(items, servers, rho),
		NoSticky:    true,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Fulfillments == 0 {
		t.Fatal("no fulfillments")
	}
	if res.Immediate != 0 {
		t.Errorf("dedicated clients fulfilled %d requests immediately", res.Immediate)
	}
	if err := res.FinalCounts.Validate(servers, rho); err != nil {
		t.Errorf("allocation outside server capacity: %v", err)
	}
}

func TestDedicatedRejectsBadServerCount(t *testing.T) {
	tr := smallTrace(t, 10, 0.05, 100, 32)
	cfg := baseConfig(t, tr, core.Static{})
	cfg.NoSticky = true
	cfg.ServerCount = 10 // == nodes: no clients left
	if _, err := Run(cfg); err == nil {
		t.Error("ServerCount == nodes accepted")
	}
	cfg.ServerCount = -2
	if _, err := Run(cfg); err == nil {
		t.Error("negative ServerCount accepted")
	}
}

func TestDedicatedRejectsDemandAtServers(t *testing.T) {
	tr := smallTrace(t, 6, 0.05, 100, 33)
	profile := demand.UniformProfile(3, 6) // gives demand to servers 0..1 too
	cfg := Config{
		Rho: 1, Utility: utility.Step{Tau: 5}, Pop: demand.Uniform(3, 1),
		Profile: profile, Trace: tr, Policy: core.Static{}, Seed: 1,
		ServerCount: 2, NoSticky: true, Initial: alloc.Counts{1, 1, 0},
	}
	if _, err := Run(cfg); err == nil {
		t.Error("profile with server demand accepted in dedicated mode")
	}
}

func TestDedicatedPureP2PUtilityGateLifted(t *testing.T) {
	tr := smallTrace(t, 10, 0.05, 200, 34)
	cfg := Config{
		Rho: 2, Utility: utility.Power{Alpha: 1.5}, Pop: demand.Uniform(4, 1),
		Trace: tr, Policy: core.Static{}, Seed: 1,
	}
	if _, err := Run(cfg); err == nil {
		t.Error("unbounded utility accepted in pure P2P")
	}
	cfg.ServerCount = 3
	cfg.Initial = alloc.Uniform(4, 3, 2)
	cfg.NoSticky = true
	if _, err := Run(cfg); err != nil {
		t.Errorf("unbounded utility rejected in dedicated mode: %v", err)
	}
}

// Observed utility in the dedicated case matches the Eq. 3 closed form.
func TestDedicatedObservedMatchesEq3(t *testing.T) {
	const (
		nodes   = 30
		servers = 10
		items   = 6
		rho     = 2
		mu      = 0.06
	)
	tr, err := contact.GenerateHomogeneous(nodes, mu, 8000, newRNG(35))
	if err != nil {
		t.Fatal(err)
	}
	pop := demand.Pareto(items, 1, 1.5)
	counts := alloc.Sqrt(pop.Rates, servers, rho)
	cfg := Config{
		Rho: rho, Utility: utility.Exponential{Nu: 0.2}, Pop: pop,
		Trace: tr, Policy: core.Static{}, Seed: 36,
		ServerCount: servers, Initial: counts, NoSticky: true,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := welfare.Homogeneous{
		Utility: cfg.Utility, Pop: pop, Mu: mu,
		Servers: servers, Clients: nodes - servers, PureP2P: false,
	}
	want := h.WelfareCounts(counts)
	if math.Abs(res.AvgUtilityRate-want) > 0.1*math.Abs(want) {
		t.Errorf("observed %g vs Eq.3 %g", res.AvgUtilityRate, want)
	}
}

// QCR works end-to-end in dedicated mode: mandates created at clients are
// routed to servers (which hold the copies) and executed there.
func TestDedicatedQCRReplicates(t *testing.T) {
	const (
		nodes   = 24
		servers = 8
		items   = 8
		rho     = 2
	)
	tr := smallTrace(t, nodes, 0.1, 4000, 37)
	q := &core.QCR{
		Reaction:       core.TunedReaction(utility.NegLog{}, 0.1, servers, 0.2),
		MandateRouting: true,
		Seed:           5,
	}
	cfg := Config{
		Rho: rho, Utility: utility.NegLog{}, Pop: demand.Pareto(items, 1, 2),
		Trace: tr, Policy: q, Seed: 38,
		ServerCount: servers,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReplicasMade == 0 {
		t.Error("dedicated QCR made no replicas")
	}
	for i, c := range res.FinalCounts {
		if c < 1 {
			t.Errorf("item %d lost its sticky replica", i)
		}
		if c > servers {
			t.Errorf("item %d has %d replicas on %d servers", i, c, servers)
		}
	}
	// NegLog's optimal allocation is proportional to demand: the top item
	// should end with more replicas than the bottom one.
	if res.FinalCounts[0] <= res.FinalCounts[items-1] {
		t.Logf("note: final allocation not ordered (%v); acceptable for one trial", res.FinalCounts)
	}
}
