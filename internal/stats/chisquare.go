// Chi-square goodness-of-fit and homogeneity statistics, the workhorses
// of the structured-rate equivalence suite (internal/rates): the
// hierarchical two-level samplers must reproduce the pair-contact
// marginals of the dense alias sampler, and a chi-square over the pair
// bins is the standard gate for that claim.
package stats

import (
	"fmt"
	"math"
)

// ChiSquareGOF returns the one-sample chi-square statistic
// Σ (obs−exp)²/exp over bins with positive expectation, plus the degrees
// of freedom (positive-expectation bins − 1, since the totals are tied).
// Bins with zero expectation and zero observations are skipped; a bin
// with zero expectation but positive observations is an immediate model
// violation and returns an error — no finite statistic expresses it.
func ChiSquareGOF(obs, exp []float64) (float64, int, error) {
	if len(obs) != len(exp) {
		return 0, 0, fmt.Errorf("stats: chi-square with %d observed vs %d expected bins", len(obs), len(exp))
	}
	var stat float64
	bins := 0
	for i := range obs {
		switch {
		case exp[i] > 0:
			d := obs[i] - exp[i]
			stat += d * d / exp[i]
			bins++
		case obs[i] != 0:
			return 0, 0, fmt.Errorf("stats: bin %d observed %g with zero expectation", i, obs[i])
		}
	}
	if bins < 2 {
		return 0, 0, fmt.Errorf("stats: chi-square needs ≥ 2 populated bins, have %d", bins)
	}
	return stat, bins - 1, nil
}

// ChiSquareTwoSample returns the homogeneity chi-square for two count
// vectors over the same bins: under the null that both samples draw from
// one distribution, the statistic is approximately χ² with
// (populated bins − 1) degrees of freedom. Bins empty in both samples
// are skipped. This is the two-sample gate of the sampler-equivalence
// suite — it needs no analytic reference distribution at all.
func ChiSquareTwoSample(a, b []float64) (float64, int, error) {
	if len(a) != len(b) {
		return 0, 0, fmt.Errorf("stats: two-sample chi-square with %d vs %d bins", len(a), len(b))
	}
	var totA, totB float64
	for i := range a {
		if a[i] < 0 || b[i] < 0 {
			return 0, 0, fmt.Errorf("stats: negative count in bin %d", i)
		}
		totA += a[i]
		totB += b[i]
	}
	if totA <= 0 || totB <= 0 {
		return 0, 0, fmt.Errorf("stats: empty sample (totals %g, %g)", totA, totB)
	}
	grand := totA + totB
	var stat float64
	bins := 0
	for i := range a {
		rowTot := a[i] + b[i]
		if rowTot == 0 {
			continue
		}
		bins++
		expA := rowTot * totA / grand
		expB := rowTot * totB / grand
		dA := a[i] - expA
		dB := b[i] - expB
		stat += dA*dA/expA + dB*dB/expB
	}
	if bins < 2 {
		return 0, 0, fmt.Errorf("stats: two-sample chi-square needs ≥ 2 populated bins, have %d", bins)
	}
	return stat, bins - 1, nil
}

// ChiSquareCritical returns the upper critical value of the χ²_df
// distribution at significance alpha (P[X > crit] = alpha), via the
// Wilson–Hilferty cube approximation: χ² ≈ df·(1 − 2/(9df) + z·√(2/(9df)))³
// with z the standard normal quantile. Accurate to well under 1% for
// df ≥ 5, which covers every gate in the equivalence suite (their bin
// counts are in the hundreds); for smaller df it stays within a few
// percent — adequate for test thresholds, not for p-values.
func ChiSquareCritical(alpha float64, df int) float64 {
	if df <= 0 || alpha <= 0 || alpha >= 1 {
		return math.NaN()
	}
	z := NormalQuantile(1 - alpha)
	d := float64(df)
	t := 1 - 2/(9*d) + z*math.Sqrt(2/(9*d))
	return d * t * t * t
}
