package numeric

import (
	"errors"
	"fmt"
	"math"
)

// WaterFillProblem describes a separable concave resource-allocation
// problem:
//
//	maximize   Σ_i w_i G(x_i)
//	subject to Σ_i x_i = Budget,  0 ≤ x_i ≤ Cap_i
//
// with G concave increasing, described through its derivative: Deriv(x) is
// G'(x), a continuous strictly decreasing positive function of x > 0. This
// is exactly the relaxed social-welfare maximization of Theorem 2, whose
// optimality condition is Property 1: w_i·Deriv(x_i) equal across all
// interior coordinates.
type WaterFillProblem struct {
	Weights []float64               // w_i > 0 (items with w_i = 0 receive 0)
	Caps    []float64               // per-coordinate upper bounds (e.g. |S|)
	Budget  float64                 // total resource (e.g. ρ·|S|)
	Deriv   func(x float64) float64 // G'(x), strictly decreasing in x
	// DerivFor, when non-nil, gives each coordinate its own derivative
	// (per-item delay-utilities: maximize Σ w_i·G_i(x_i) with balance
	// condition w_i·G_i'(x_i) = λ). Takes precedence over Deriv.
	DerivFor func(i int, x float64) float64
}

// derivFor resolves the derivative for coordinate i.
func (p WaterFillProblem) derivFor(i int) func(float64) float64 {
	if p.DerivFor != nil {
		return func(x float64) float64 { return p.DerivFor(i, x) }
	}
	return p.Deriv
}

// ErrInfeasible is returned when the budget exceeds the sum of caps (the
// problem has no feasible point using the whole budget) or inputs are
// malformed.
var ErrInfeasible = errors.New("numeric: water-filling problem infeasible")

// WaterFill solves the problem by bisecting on the Lagrange multiplier λ:
// for a trial λ each coordinate takes x_i(λ) = clamp(Deriv⁻¹(λ/w_i), 0,
// Cap_i) and λ is adjusted until Σ x_i(λ) = Budget. The returned slice
// satisfies the balance condition of Property 1 up to the solver
// tolerance.
func WaterFill(p WaterFillProblem) ([]float64, error) {
	n := len(p.Weights)
	if n == 0 || len(p.Caps) != n || p.Budget < 0 || (p.Deriv == nil && p.DerivFor == nil) {
		return nil, ErrInfeasible
	}
	// Feasibility is measured against the capacity actually reachable:
	// zero-weight coordinates never receive anything (their caps are not
	// usable capacity), so a budget exceeding the positive-weight cap sum
	// has no solution respecting both the box constraints and Σ x = Budget.
	var capSum, effCap float64
	for i, c := range p.Caps {
		if c < 0 || p.Weights[i] < 0 {
			return nil, ErrInfeasible
		}
		capSum += c
		if p.Weights[i] > 0 {
			effCap += c
		}
	}
	if p.Budget > effCap*(1+1e-9) {
		return nil, ErrInfeasible
	}
	x := make([]float64, n)
	if p.Budget == 0 {
		return x, nil
	}
	if p.Budget >= effCap {
		for i := range x {
			if p.Weights[i] > 0 {
				x[i] = p.Caps[i]
			}
		}
		return x, nil
	}

	// fill records the first per-coordinate inversion failure instead of
	// silently zeroing the coordinate: a NaN derivative or a vanished
	// bracket means the balance condition cannot be certified, and the
	// caller must hear about it rather than receive a plausible-looking
	// allocation.
	var fillErr error
	fill := func(lambda float64) float64 {
		return p.fillAt(lambda, x, nil, &fillErr)
	}

	// Bracket lambda: large lambda → small fill, small lambda → large fill.
	// Derive bounds from the extreme per-coordinate marginal values.
	var hi, lo float64 = 0, math.Inf(1)
	anyWeight := false
	probe := p.Budget/float64(4*n) + tiny
	for i, w := range p.Weights {
		if w <= 0 {
			continue
		}
		anyWeight = true
		deriv := p.derivFor(i)
		if v := w * deriv(probe); v > hi && !math.IsInf(v, 1) && !math.IsNaN(v) {
			hi = v
		}
		if v := w * deriv(capSum); v < lo && v > 0 && !math.IsNaN(v) {
			lo = v
		}
	}
	if !anyWeight {
		return nil, ErrInfeasible
	}
	if hi == 0 {
		hi = 1e300
	}
	if math.IsInf(lo, 1) || lo <= 0 {
		lo = 1e-300
	}
	for fill(hi) > p.Budget {
		hi *= 4
		if math.IsInf(hi, 1) {
			return nil, ErrNoConverge
		}
	}
	for fill(lo) < p.Budget {
		lo /= 4
		if lo == 0 {
			break
		}
	}
	for i := 0; i < 200; i++ {
		prod := lo * hi
		mid := math.Sqrt(prod) // multiplier spans orders of magnitude: bisect in log space
		if prod < 0x1p-1022 || math.IsInf(prod, 1) {
			// lo·hi left the normal float range (dual levels beyond
			// ~1e±154, e.g. steep step-utility transforms): the product is
			// zero, infinite, or subnormal with only a few significant
			// bits, so √(lo·hi) would stop the bisection early — or with
			// the bracket wide open — and the slack pass below would
			// silently distort the allocation to repair the budget gap.
			// Take the geometric mean via logs instead.
			mid = math.Exp((math.Log(lo) + math.Log(hi)) / 2)
		}
		if mid <= lo || mid >= hi || mid == 0 {
			break
		}
		if fill(mid) > p.Budget {
			lo = mid
		} else {
			hi = mid
		}
	}
	total := fill(hi)
	if fillErr != nil {
		return nil, fillErr
	}
	if err := p.settle(x, total); err != nil {
		return nil, err
	}
	return x, nil
}

// settle distributes any residual rounding slack proportionally over
// interior coordinates so Σ x_i = Budget holds tightly, then certifies the
// budget constraint: if the λ-bisection stalled (flat or ill-conditioned
// derivatives) the slack pass cannot repair an arbitrarily large gap, and
// the result would quietly violate Σ x_i = Budget. The tolerance is loose
// enough for honest rounding.
func (p WaterFillProblem) settle(x []float64, total float64) error {
	if slack := p.Budget - total; math.Abs(slack) > 1e-12*math.Max(1, p.Budget) {
		var room float64
		for i := range x {
			if p.Weights[i] > 0 {
				if slack > 0 {
					room += p.Caps[i] - x[i]
				} else {
					room += x[i]
				}
			}
		}
		if room > 0 {
			for i := range x {
				if p.Weights[i] == 0 {
					continue
				}
				if slack > 0 {
					x[i] += slack * (p.Caps[i] - x[i]) / room
				} else {
					x[i] += slack * x[i] / room
				}
			}
		}
	}
	var sum float64
	for _, v := range x {
		if math.IsNaN(v) {
			return ErrNaN
		}
		sum += v
	}
	if math.Abs(sum-p.Budget) > 1e-6*math.Max(1, p.Budget) {
		return ErrNoConverge
	}
	return nil
}

// fillAt computes the per-coordinate allocation x_i(λ) = clamp(Deriv⁻¹(λ/w_i),
// 0, Cap_i) into x and returns Σ x_i. guessAt, when non-nil, supplies the
// starting point for the per-coordinate inversion; nil selects the cold-start
// heuristic Cap_i/2. The first inversion failure is recorded in *fillErr so
// callers reject allocations whose balance condition cannot be certified.
func (p WaterFillProblem) fillAt(lambda float64, x []float64, guessAt func(i int) float64, fillErr *error) float64 {
	var total float64
	for i := range x {
		w := p.Weights[i]
		if w == 0 || p.Caps[i] == 0 {
			x[i] = 0
			continue
		}
		deriv := p.derivFor(i)
		// Solve deriv(v) = lambda/w for v, clamped to [0, cap].
		target := lambda / w
		if deriv(p.Caps[i]) >= target {
			x[i] = p.Caps[i]
		} else if d0 := deriv(tiny); d0 <= target && !math.IsInf(d0, 1) {
			x[i] = 0
		} else {
			guess := p.Caps[i] / 2
			if guessAt != nil {
				guess = guessAt(i)
			}
			v, err := InvertDecreasing(deriv, target, guess)
			if err != nil {
				if *fillErr == nil {
					*fillErr = fmt.Errorf("numeric: water-filling coordinate %d at λ=%g: %w", i, lambda, err)
				}
				v = 0
			}
			if v < 0 {
				v = 0
			}
			if v > p.Caps[i] {
				v = p.Caps[i]
			}
			x[i] = v
		}
		total += x[i]
	}
	return total
}

// tiny is the smallest argument at which the water-filling solver probes a
// derivative; ϕ transforms may diverge at 0 so probing exactly 0 is unsafe.
const tiny = 1e-12
