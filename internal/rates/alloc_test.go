package rates

import (
	"runtime"
	"testing"
)

// allocBytes returns the cumulative heap bytes allocated while running
// fn, single-threaded. TotalAlloc is monotone (GC cannot shrink it), so
// the measurement is stable without disabling the collector.
func allocBytes(fn func()) uint64 {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	fn()
	runtime.ReadMemStats(&after)
	return after.TotalAlloc - before.TotalAlloc
}

// TestSetupAllocLinear is the alloc-regression gate on the O(N + C²)
// setup claim: building a structured model plus its sharded sampler at
// N = 200_000 must stay within a small per-node byte budget — the dense
// path's O(N²) alias state (~12·N²/2 bytes ≈ 240 GB here) exceeds the
// bound by six orders of magnitude, so any accidental densification
// trips this immediately. The budget (128 B/node plus 1 MB of C²-and-
// constant slack) is ~3× the measured cost, loose enough for allocator
// and toolchain drift.
func TestSetupAllocLinear(t *testing.T) {
	const nodes = 200_000
	const perNodeBudget = 128
	const slack = 1 << 20
	var m *Model
	got := allocBytes(func() {
		var err error
		m, err = NewCommunity(CommunityConfig{Nodes: nodes, Communities: 32, In: 0.5, Out: 0.01})
		if err != nil {
			t.Fatal(err)
		}
		src, err := NewSharded(m, 1000, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := src.Partition(4); !ok {
			t.Fatal("partition refused")
		}
	})
	if budget := uint64(nodes*perNodeBudget + slack); got > budget {
		t.Errorf("setup allocated %d bytes at N=%d (budget %d): O(N + C²) regressed", got, nodes, budget)
	}
	t.Logf("setup allocated %d bytes at N=%d (%.1f B/node)", got, nodes, float64(got)/nodes)

	// Linearity cross-check: doubling N must not quadruple the cost.
	got2 := allocBytes(func() {
		m2, err := NewCommunity(CommunityConfig{Nodes: 2 * nodes, Communities: 32, In: 0.5, Out: 0.01})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := NewSharded(m2, 1000, 1, 0); err != nil {
			t.Fatal(err)
		}
	})
	if got2 > 3*got {
		t.Errorf("doubling N scaled setup allocation %d → %d (>3×): superlinear setup", got, got2)
	}
}

// TestSourceNextZeroAlloc pins the O(1) per-contact claim: draining the
// hierarchical sampler allocates nothing after construction.
func TestSourceNextZeroAlloc(t *testing.T) {
	m, err := NewCommunity(CommunityConfig{Nodes: 1000, Communities: 8, In: 0.2, Out: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewSource(m, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(2000, func() {
		src.Next()
	})
	if avg != 0 {
		t.Errorf("Source.Next allocates %.2f objects per contact, want 0", avg)
	}
}
