package main

import (
	"fmt"

	"impatience/internal/adversary"
	"impatience/internal/experiment"
	"impatience/internal/trace"
	"impatience/internal/utility"
)

// adversaryEntry measures one (scheme, workload) cell of the adversary
// ladder: a full single-trial simulation over a fixed materialized trace,
// normalized to the cost per contact so the hardened reaction's overhead
// is comparable across scenario scales.
type adversaryEntry struct {
	Scheme    string     `json:"scheme"`
	Adversary bool       `json:"adversary"`
	Result    pathResult `json:"result"`
	// NsPerContact is NsPerOp over the trace's contact count.
	NsPerContact float64 `json:"ns_per_contact"`
	// OverheadVsVanilla is this cell's ns/contact over the vanilla-QCR,
	// adversaries-off baseline: the price of the defense (and of the
	// attack) in relative per-contact cost.
	OverheadVsVanilla float64 `json:"overhead_vs_vanilla"`
}

type adversaryReport struct {
	Benchmark string `json:"benchmark"`
	provenance
	scenarioParams
	Contacts int `json:"contacts"`
	// AdversaryConfig records the headline attack the "adversary" cells
	// ran under.
	DishonestFrac float64          `json:"dishonest_frac"`
	Mult          float64          `json:"mult"`
	FreeRiderFrac float64          `json:"freerider_frac"`
	Results       []adversaryEntry `json:"results"`
}

// runAdversary runs the hardened-vs-vanilla QCR ladder and writes
// BENCH_adversary.json: vanilla QCR with no adversaries is the baseline,
// then both reactions pay for the headline adversarial workload
// (dishonest counter inflation plus free-riders). The interesting ratios
// are QCRH-off vs QCR-off (what the defense costs when nothing attacks)
// and QCRH-on vs QCR-on (what it costs while actually defending).
func runAdversary(short bool, out string) error {
	sc := scenario(short)
	u := utility.Power{Alpha: 0}
	ac := adversary.Config{
		DishonestFrac: 0.2,
		Mult:          25,
		FreeRiderFrac: 0.2,
		Seed:          sc.Seed * 50021,
	}

	gen := sc.HomogeneousTraces()
	tr, err := gen(sc.Seed)
	if err != nil {
		return err
	}
	rates := trace.EmpiricalRates(tr)
	mu := rates.Mean()
	if mu <= 0 {
		return fmt.Errorf("adversary benchmark trace has no contacts")
	}

	schemes := []string{experiment.SchemeQCR, experiment.SchemeQCRH}
	report := adversaryReport{
		Benchmark:      "AdversaryOverhead/RunSchemeFaults",
		provenance:     stamp(short),
		scenarioParams: paramsOf(sc, schemes),
		Contacts:       len(tr.Contacts),
		DishonestFrac:  ac.DishonestFrac,
		Mult:           ac.Mult,
		FreeRiderFrac:  ac.FreeRiderFrac,
	}

	var baseline float64
	for _, scheme := range schemes {
		for _, adv := range []bool{false, true} {
			var plan *experiment.FaultPlan
			if adv {
				cfg := ac
				plan = &experiment.FaultPlan{Adversary: &cfg}
			}
			res, err := measurePath(func() error {
				_, err := sc.RunSchemeFaults(scheme, u, tr, rates, mu, 0, false, plan)
				return err
			})
			if err != nil {
				return err
			}
			e := adversaryEntry{
				Scheme:       scheme,
				Adversary:    adv,
				Result:       res,
				NsPerContact: float64(res.NsPerOp) / float64(len(tr.Contacts)),
			}
			if scheme == experiment.SchemeQCR && !adv {
				baseline = e.NsPerContact
			}
			if baseline > 0 {
				e.OverheadVsVanilla = e.NsPerContact / baseline
			}
			report.Results = append(report.Results, e)
			fmt.Printf("adversary  %-5s adversaries=%-5v  %8.1f ns/contact  %10d B/op  (%.2fx vs vanilla baseline)\n",
				scheme, adv, e.NsPerContact, res.BytesPerOp, e.OverheadVsVanilla)
		}
	}

	return writeJSON(out, report)
}
