// Command agetrace generates and inspects contact traces: the synthetic
// conference (Infocom'06-like) and vehicular (Cabspotting-like) data-set
// substitutes, homogeneous Poisson traces, and memoryless counterparts of
// existing trace files.
//
// Usage examples:
//
//	agetrace -kind conference -out conf.txt
//	agetrace -kind vehicular -nodes 50 -out cabs.txt
//	agetrace -kind structured -rates community:n=200,c=8,in=0.5,out=0.01 -duration 1000 -stats
//	agetrace -kind memoryless -in conf.txt -out conf-ml.txt
//	agetrace -stats -in conf.txt
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"os"

	"impatience/internal/contact"
	"impatience/internal/rates"
	"impatience/internal/stats"
	"impatience/internal/synth"
	"impatience/internal/trace"
)

func main() {
	var (
		kind     = flag.String("kind", "conference", "generator: conference, vehicular, homogeneous, structured, memoryless")
		nodes    = flag.Int("nodes", 50, "number of nodes")
		mu       = flag.Float64("mu", 0.05, "pair rate for -kind homogeneous")
		ratesStr = flag.String("rates", "", "structured rate model spec for -kind structured (community:n=...,c=...,in=...,out=... | hubspoke:... | distance:...)")
		duration = flag.Float64("duration", 5000, "minutes for -kind homogeneous or structured")
		days     = flag.Int("days", 3, "days for -kind conference")
		seed     = flag.Uint64("seed", 1, "random seed")
		in       = flag.String("in", "", "input trace (for -kind memoryless or -stats)")
		out      = flag.String("out", "", "output path ('-' or empty prints stats only)")
		show     = flag.Bool("stats", false, "print trace statistics")
	)
	flag.Parse()
	if err := run(*kind, *nodes, *mu, *ratesStr, *duration, *days, *seed, *in, *out, *show); err != nil {
		fmt.Fprintln(os.Stderr, "agetrace:", err)
		os.Exit(1)
	}
}

func run(kind string, nodes int, mu float64, ratesStr string, duration float64, days int, seed uint64, in, out string, show bool) error {
	rng := rand.New(rand.NewPCG(seed, seed*2654435761))
	var tr *trace.Trace
	var err error
	switch {
	case show && in != "" && kind != "memoryless":
		tr, err = trace.Load(in)
	case kind == "conference":
		cfg := synth.DefaultConference()
		cfg.Nodes = nodes
		cfg.Days = days
		tr, err = synth.Conference(cfg, rng)
	case kind == "vehicular":
		cfg := synth.DefaultVehicular()
		cfg.Cabs = nodes
		tr, err = synth.Vehicular(cfg, rng)
	case kind == "homogeneous":
		tr, err = contact.GenerateHomogeneous(nodes, mu, duration, rng)
	case kind == "structured":
		tr, err = structuredTrace(ratesStr, duration, seed)
	case kind == "memoryless":
		if in == "" {
			return fmt.Errorf("-kind memoryless requires -in")
		}
		var base *trace.Trace
		base, err = trace.Load(in)
		if err == nil {
			tr, err = synth.Memoryless(base, rng)
		}
	default:
		return fmt.Errorf("unknown kind %q", kind)
	}
	if err != nil {
		return err
	}
	printStats(tr)
	if out != "" && out != "-" {
		if err := trace.Save(out, tr); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", out)
	}
	return nil
}

// maxStructuredNodes bounds -kind structured: this command materializes
// the trace and printStats builds the O(N²) empirical rate matrix, so it
// is an inspection tool for moderate populations. The million-node scale
// path never materializes — see agesim -rates and agebench -scale-only.
const maxStructuredNodes = 20000

// structuredTrace materializes one realization of a structured
// heterogeneous rate model (internal/rates) for inspection or saving.
func structuredTrace(spec string, duration float64, seed uint64) (*trace.Trace, error) {
	if spec == "" {
		return nil, fmt.Errorf("-kind structured requires -rates")
	}
	m, err := rates.ParseRates(spec)
	if err != nil {
		return nil, err
	}
	if m.Nodes() > maxStructuredNodes {
		return nil, fmt.Errorf("materializing %d nodes here would build O(N²) stats; cap is %d (use agesim -rates for the streaming path)",
			m.Nodes(), maxStructuredNodes)
	}
	src, err := rates.NewSharded(m, duration, seed, 0)
	if err != nil {
		return nil, err
	}
	return trace.Collect(src)
}

func printStats(tr *trace.Trace) {
	rm := trace.EmpiricalRates(tr)
	gaps := trace.InterContactTimes(tr)
	fmt.Printf("nodes            %d\n", tr.Nodes)
	fmt.Printf("duration         %.0f min (%.1f days)\n", tr.Duration, tr.Duration/1440)
	fmt.Printf("contacts         %d (%.3f per node-pair-hour)\n",
		len(tr.Contacts), float64(len(tr.Contacts))/float64(trace.NumPairs(tr.Nodes))/tr.Duration*60)
	fmt.Printf("mean pair rate   %.6f /min\n", rm.Mean())
	if len(gaps) > 1 {
		sum := stats.Summarize(gaps)
		fmt.Printf("inter-contact    mean %.1f min, p5 %.2f, p95 %.1f, CV %.2f%s\n",
			sum.Mean, sum.P5, sum.P95, trace.CoefficientOfVariation(gaps), burstLabel(trace.CoefficientOfVariation(gaps)))
	}
	counts := trace.ContactCounts(tr)
	cs := make([]float64, len(counts))
	for i, c := range counts {
		cs[i] = float64(c)
	}
	sum := stats.Summarize(cs)
	fmt.Printf("node coverage    min %.0f, median %.0f, max %.0f contacts\n", sum.Min, sum.P50, sum.Max)
}

func burstLabel(cv float64) string {
	switch {
	case cv > 1.3:
		return " (bursty)"
	case cv > 0.85:
		return " (≈memoryless)"
	default:
		return " (regular)"
	}
}
