package trace

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// StreamReader reads the text trace format (see io.go) incrementally: the
// header is parsed up front, contacts are parsed one Next at a time, and
// the whole-file contact slice is never built. Streaming adds one
// constraint over Read: contacts must already be in time order (Read
// sorts after the fact; a stream cannot). Each contact is normalized
// (A < B) and validated as it is produced; a malformed or out-of-order
// line ends the stream with the error available from Err.
type StreamReader struct {
	sc       *bufio.Scanner
	closer   io.Closer
	nodes    int
	duration float64
	lineNo   int
	prevT    float64
	err      error
	done     bool
}

// NewStreamReader parses the header (nodes and duration lines, which must
// precede the first contact) and returns a source streaming the rest.
func NewStreamReader(r io.Reader) (*StreamReader, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	s := &StreamReader{sc: sc}
	for s.nodes == 0 || s.duration == 0 {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return nil, err
			}
			return nil, fmt.Errorf("%w: stream ended before nodes/duration header", ErrInvalid)
		}
		s.lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch {
		case fields[0] == "nodes" && len(fields) == 2:
			n, err := strconv.Atoi(fields[1])
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("trace: line %d: bad node count %q", s.lineNo, fields[1])
			}
			s.nodes = n
		case fields[0] == "duration" && len(fields) == 2:
			d, err := strconv.ParseFloat(fields[1], 64)
			if err != nil || d <= 0 {
				return nil, fmt.Errorf("trace: line %d: bad duration %q", s.lineNo, fields[1])
			}
			s.duration = d
		default:
			return nil, fmt.Errorf("%w: line %d: contact before nodes/duration header", ErrInvalid, s.lineNo)
		}
	}
	return s, nil
}

// OpenStream opens a trace file as a streaming source. Close releases the
// file; Err reports any mid-stream failure after Next returns false.
func OpenStream(path string) (*StreamReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	s, err := NewStreamReader(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	s.closer = f
	return s, nil
}

// Nodes implements Source.
func (s *StreamReader) Nodes() int { return s.nodes }

// Duration implements Source.
func (s *StreamReader) Duration() float64 { return s.duration }

// Err implements ErrSource.
func (s *StreamReader) Err() error { return s.err }

// Close closes the underlying file (no-op for reader-backed streams).
func (s *StreamReader) Close() error {
	s.done = true
	if s.closer == nil {
		return nil
	}
	c := s.closer
	s.closer = nil
	return c.Close()
}

// fail ends the stream with an error.
func (s *StreamReader) fail(err error) (Contact, bool) {
	s.err = err
	s.done = true
	return Contact{}, false
}

// Next implements Source.
func (s *StreamReader) Next() (Contact, bool) {
	if s.done {
		return Contact{}, false
	}
	for s.sc.Scan() {
		s.lineNo++
		line := strings.TrimSpace(s.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return s.fail(fmt.Errorf("trace: line %d: unrecognized line %q", s.lineNo, line))
		}
		t, err1 := strconv.ParseFloat(fields[0], 64)
		a, err2 := strconv.Atoi(fields[1])
		b, err3 := strconv.Atoi(fields[2])
		if err1 != nil || err2 != nil || err3 != nil {
			return s.fail(fmt.Errorf("trace: line %d: bad contact %q", s.lineNo, line))
		}
		c := Contact{T: t, A: a, B: b}
		if c.A > c.B {
			c.A, c.B = c.B, c.A
		}
		if err := CheckStreamContact(c, s.prevT, s.nodes, s.duration); err != nil {
			return s.fail(fmt.Errorf("line %d: %w", s.lineNo, err))
		}
		s.prevT = c.T
		return c, true
	}
	s.done = true
	if err := s.sc.Err(); err != nil {
		s.err = err
	}
	return Contact{}, false
}
