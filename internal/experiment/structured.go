package experiment

import (
	"fmt"

	"impatience/internal/parallel"
	"impatience/internal/rates"
	"impatience/internal/sim"
	"impatience/internal/trace"
	"impatience/internal/utility"
)

// This file is the structured-rates scale pipeline: trials driven by the
// hierarchical rate models of internal/rates instead of a dense rate
// matrix. Two things distinguish it from the homogeneous/empirical
// paths: the per-trial O(N²) empirical-rate pass is skipped entirely
// (the ψ plug-in rate comes from the model's MeanPairRate, and OPT —
// the only scheme that consumes a rate matrix — is rejected), and the
// contact source is the group-decomposed sampler, so generation itself
// partitions across shards. Peak state is O(N + C²) end to end, which
// is what admits the N = 10⁶ rung of the scale ladder.

// StructuredSources adapts a structured rate model to the SourceGen
// seam: each trial streams the model's contact process through the
// group-decomposed (Partitionable) sampler with the trial's seed.
func (sc Scenario) StructuredSources(m *rates.Model) SourceGen {
	return func(seed uint64) (trace.Source, error) {
		return rates.NewSharded(m, sc.Duration, seed, 0)
	}
}

// checkStructuredSchemes rejects scheme sets the rate-matrix-free path
// cannot serve.
func checkStructuredSchemes(schemes []string) error {
	if len(schemes) == 0 {
		return fmt.Errorf("experiment: empty scheme set")
	}
	for _, s := range schemes {
		if s == SchemeOPT {
			return fmt.Errorf("experiment: %s needs the O(N²) rate matrix; the structured scale path cannot build it", SchemeOPT)
		}
	}
	return nil
}

// RunStructuredComparison is RunComparison over a structured rate model:
// same trial engine, same aggregation, but no empirical-rate pass — the
// plug-in rate is the model's mean pair rate and each trial's stream is
// consumed exactly once. OPT is rejected (it needs the dense matrix), so
// losses are not normalized against it; Utility summaries carry the
// comparison.
func (sc Scenario) RunStructuredComparison(u utility.Function, m *rates.Model, schemes []string) (*Comparison, error) {
	if err := checkStructuredSchemes(schemes); err != nil {
		return nil, err
	}
	if m.Nodes() != sc.Nodes {
		return nil, fmt.Errorf("experiment: model has %d nodes, scenario %d", m.Nodes(), sc.Nodes)
	}
	mu := m.MeanPairRate()
	gen := sc.StructuredSources(m)
	outs, err := parallel.RunTrials(sc.Trials, sc.Workers, sc.Seed, func(trial int, seed uint64) (cmpTrial, error) {
		src, err := gen(seed)
		if err != nil {
			return cmpTrial{}, err
		}
		results, err := sc.runBatchOn(schemes, u, nil, mu, uint64(trial), false, nil, src)
		if err != nil {
			return cmpTrial{}, err
		}
		out := cmpTrial{utility: make([]float64, len(schemes))}
		for k := range schemes {
			out.utility[k] = results[k].AvgUtilityRate
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	return aggregateComparison(schemes, false, outs), nil
}

// StructuredReport is one metered structured-rates run: the scale
// ladder's per-cell measurement. DigestFamily folds every scheme's
// result digest into one value — equal families across shard counts is
// the bit-identical-execution check the ladder records.
type StructuredReport struct {
	Nodes        int     `json:"nodes"`
	Communities  int     `json:"communities"`
	Items        int     `json:"items"`
	Rho          int     `json:"rho"`
	Shards       int     `json:"shards"`
	Duration     float64 `json:"duration"`
	MeanPairRate float64 `json:"mean_pair_rate"`
	Contacts     int     `json:"contacts"`
	// PeakHeapBytes is the sampled live heap during the run — the O(N +
	// C²) claim made measurable (contrast contacts·24 or the dense
	// sampler's 12·N²/2).
	PeakHeapBytes uint64   `json:"peak_heap_bytes"`
	DigestFamily  uint64   `json:"digest_family"`
	Schemes       []string `json:"schemes"`
	AvgUtility    []float64 `json:"avg_utility"`
	Fulfillments  int      `json:"fulfillments"`
}

// StructuredScale runs one trial of the given schemes over the model on
// the sharded executor (sc.Shards) and meters it. The contact stream is
// counted and heap-sampled through the metering wrapper, which costs the
// producer the Partitionable fast path for generation — the sim worker
// fan-out, which dominates, still applies.
func (sc Scenario) StructuredScale(u utility.Function, m *rates.Model, schemes []string, trial uint64) (*StructuredReport, error) {
	if err := checkStructuredSchemes(schemes); err != nil {
		return nil, err
	}
	if m.Nodes() != sc.Nodes {
		return nil, fmt.Errorf("experiment: model has %d nodes, scenario %d", m.Nodes(), sc.Nodes)
	}
	mu := m.MeanPairRate()
	src, err := sc.StructuredSources(m)(parallel.TrialSeed(sc.Seed, int(trial)))
	if err != nil {
		return nil, err
	}
	metered := newMeteredSource(src)
	cfgs, err := sc.batchConfigs(schemes, u, nil, mu, trial, false, nil)
	if err != nil {
		return nil, err
	}
	results, err := sim.RunBatchSharded(cfgs, metered, sc.Shards)
	if err != nil {
		return nil, err
	}
	metered.sample()
	rep := &StructuredReport{
		Nodes:        m.Nodes(),
		Communities:  m.Communities(),
		Items:        sc.Items,
		Rho:          sc.Rho,
		Shards:       sc.Shards,
		Duration:     sc.Duration,
		MeanPairRate: mu,
		Contacts:     metered.produced,
		PeakHeapBytes: metered.peak,
		Schemes:      append([]string(nil), schemes...),
		AvgUtility:   make([]float64, len(results)),
	}
	acc := uint64(0x9e3779b97f4a7c15)
	for k, r := range results {
		rep.AvgUtility[k] = r.AvgUtilityRate
		rep.Fulfillments += r.Fulfillments
		acc = parallel.SplitMix64(acc ^ r.Digest())
	}
	rep.DigestFamily = acc
	return rep, nil
}
