package experiment

import (
	"reflect"
	"runtime"
	"testing"

	"impatience/internal/adversary"
	"impatience/internal/faults"
	"impatience/internal/parallel"
	"impatience/internal/synth"
	"impatience/internal/trace"
	"impatience/internal/utility"
)

// The golden determinism tests pin the parallel trial engine's central
// guarantee: per-trial results are bit-identical at any worker count,
// because every RNG stream in a trial is a pure function of (scenario
// seed, trial index). They run each figure family's per-trial simulation
// at workers = 1, 4 and NumCPU and compare sim.Result digests — any
// scheduling dependence, shared mutable state, or float reduction whose
// order depends on workers shows up as a digest mismatch. They double as
// the behavior-identity certificate for the hot-path optimizations in
// internal/sim and internal/core (CI runs them under -race).

// goldenScenario is deliberately tiny: the point is determinism, not
// statistical power.
func goldenScenario() Scenario {
	sc := Default()
	sc.Nodes = 12
	sc.Items = 10
	sc.Rho = 3
	sc.Duration = 400
	sc.Trials = 3
	return sc
}

// mixDigest folds one result digest into a trial's running digest.
func mixDigest(acc, d uint64) uint64 { return parallel.SplitMix64(acc ^ d) }

// goldenFamily runs one figure family's simulations for a single trial
// and returns the combined digest of every sim.Result it produced.
type goldenFamily struct {
	name string
	run  func(trial int, seed uint64) (uint64, error)
}

// digestSchemes builds a per-trial runner that simulates each scheme on
// the trial's trace (exactly as the figure pipelines do) and folds the
// result digests together.
func digestSchemes(sc Scenario, gen TraceGen, u utility.Function, schemes []string, series bool, plan func(trial int) *FaultPlan) func(trial int, seed uint64) (uint64, error) {
	return func(trial int, seed uint64) (uint64, error) {
		tr, err := gen(seed)
		if err != nil {
			return 0, err
		}
		rates := trace.EmpiricalRates(tr)
		mu := rates.Mean()
		var acc uint64
		for _, scheme := range schemes {
			var p *FaultPlan
			if plan != nil {
				p = plan(trial)
			}
			res, err := sc.RunSchemeFaults(scheme, u, tr, rates, mu, uint64(trial), series, p)
			if err != nil {
				return 0, err
			}
			acc = mixDigest(acc, res.Digest())
		}
		return acc, nil
	}
}

func goldenFamilies() []goldenFamily {
	sc := goldenScenario()

	conf := synth.DefaultConference()
	conf.Nodes = sc.Nodes
	conf.Days = 1
	scConf := sc
	scConf.Duration = float64(conf.Days) * 1440

	veh := synth.DefaultVehicular()
	veh.Cabs = sc.Nodes
	veh.DurationMin = 240
	scVeh := sc
	scVeh.Duration = veh.DurationMin

	// Mirrors degradationSweep's per-trial fault seeding.
	faultPlan := func(trial int) *FaultPlan {
		fc := faults.Config{PLoss: 0.3, ChurnRate: 0.001, MeanDowntime: sc.Duration / 100}
		fc.Seed = sc.Seed*69069 + uint64(trial)*127
		return sc.Hardening(&fc)
	}

	return append([]goldenFamily{
		{"fig3-routing", digestSchemes(sc, sc.HomogeneousTraces(), utility.Power{Alpha: 0},
			[]string{SchemeQCR, SchemeQCRWOM}, true, nil)},
		{"fig4-power", digestSchemes(sc, sc.HomogeneousTraces(), utility.Power{Alpha: -1},
			[]string{SchemeQCR, SchemeOPT, SchemeUNI}, false, nil)},
		{"fig4-step", digestSchemes(sc, sc.HomogeneousTraces(), utility.Step{Tau: 10},
			[]string{SchemeQCR, SchemeSQRT, SchemePROP, SchemeDOM}, false, nil)},
		{"fig5-conference", digestSchemes(scConf, ConferenceTraces(conf), utility.Step{Tau: 60},
			[]string{SchemeQCR, SchemeOPT}, false, nil)},
		{"fig6-vehicular", digestSchemes(scVeh, VehicularTraces(veh), utility.Exponential{Nu: 0.1},
			[]string{SchemeQCR, SchemeUNI}, false, nil)},
		{"xd-faults", digestSchemes(sc, sc.HomogeneousTraces(), utility.Step{Tau: 10},
			[]string{SchemeQCR, SchemeOPT}, true, faultPlan)},
	}, goldenFamily{"xa-adversary", digestSchemes(sc, sc.HomogeneousTraces(), utility.Power{Alpha: 0},
		[]string{SchemeQCR, SchemeQCRH, SchemeOPT}, true, adversaryPlan(sc))})
}

// adversaryPlan mirrors adversarySweep's per-trial adversary seeding:
// dishonest counter inflation, free-riders, and one mid-run popularity
// rotation.
func adversaryPlan(sc Scenario) func(trial int) *FaultPlan {
	return func(trial int) *FaultPlan {
		ac := adversary.Config{
			DishonestFrac: 0.25,
			Mult:          25,
			FreeRiderFrac: 0.25,
			Seed:          sc.Seed*50021 + uint64(trial)*127,
		}
		if s, err := synth.FlashCrowd(sc.Pop(), sc.Duration/2, sc.Duration, 1); err == nil {
			ac.Schedule = s
		}
		return &FaultPlan{Adversary: &ac}
	}
}

func TestGoldenDigestsWorkerInvariance(t *testing.T) {
	sc := goldenScenario()
	for _, fam := range goldenFamilies() {
		fam := fam
		t.Run(fam.name, func(t *testing.T) {
			run := func(workers int) []uint64 {
				t.Helper()
				out, err := parallel.RunTrials(sc.Trials, workers, sc.Seed, fam.run)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				return out
			}
			ref := run(1)
			for _, w := range []int{4, runtime.NumCPU()} {
				got := run(w)
				for i := range ref {
					if got[i] != ref[i] {
						t.Fatalf("workers=%d trial %d: digest %#x != %#x (worker-count dependence)", w, i, got[i], ref[i])
					}
				}
			}
		})
	}
}

// TestGoldenFiguresWorkerInvariance runs whole figure pipelines (trace
// generation, trials, merging, table assembly) at workers 1 vs 4 and
// requires exactly equal outputs — the end-to-end version of the digest
// test, covering every converted trial loop including its reduction.
func TestGoldenFiguresWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("figure pipelines are slow under -short")
	}
	sc := goldenScenario()
	cases := []struct {
		name string
		run  func(sc Scenario) (any, error)
	}{
		{"figure3", func(sc Scenario) (any, error) { return Figure3(sc) }},
		{"rewriting", func(sc Scenario) (any, error) { return AblationRewriting(sc, utility.Power{Alpha: 0}) }},
		{"dynamic-demand", func(sc Scenario) (any, error) { return DynamicDemand(sc, utility.Step{Tau: 10}) }},
		{"reactions", func(sc Scenario) (any, error) { return ReactionComparison(sc, utility.Power{Alpha: 0}) }},
		{"overhead", func(sc Scenario) (any, error) { return OverheadComparison(sc, utility.Power{Alpha: 0}) }},
		{"mixed-catalog", func(sc Scenario) (any, error) { return MixedCatalog(sc) }},
		{"kiosks", func(sc Scenario) (any, error) { return DedicatedKiosks(sc, sc.Nodes/3) }},
		{"adaptive", func(sc Scenario) (any, error) { return AdaptiveImpatience(sc, 0.1) }},
		{"degradation-loss", func(sc Scenario) (any, error) {
			return DegradationLoss(sc, utility.Step{Tau: 10}, []float64{0, 0.3})
		}},
		{"mass-failure", func(sc Scenario) (any, error) { return MassFailureRecovery(sc, utility.Step{Tau: 10}, 0.5) }},
		{"robustness-dishonest", func(sc Scenario) (any, error) {
			return RobustnessDishonest(sc, utility.Power{Alpha: 0}, []float64{0, 0.25}, 25)
		}},
		{"robustness-diurnal", func(sc Scenario) (any, error) {
			return RobustnessDiurnal(sc, utility.Step{Tau: 10}, []float64{1, 0.1})
		}},
		{"comparison", func(sc Scenario) (any, error) {
			return sc.RunComparison(utility.Step{Tau: 10}, sc.HomogeneousSources(),
				[]string{SchemeQCR, SchemeOPT, SchemeUNI})
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			s1 := sc
			s1.Workers = 1
			ref, err := tc.run(s1)
			if err != nil {
				t.Fatal(err)
			}
			s4 := sc
			s4.Workers = 4
			got, err := tc.run(s4)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ref, got) {
				t.Errorf("workers=4 result differs from workers=1:\nref: %+v\ngot: %+v", ref, got)
			}
		})
	}
}
