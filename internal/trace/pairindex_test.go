package trace

import (
	"math"
	"testing"
)

// TestPairFromIndexRowBoundaries is the exhaustive boundary regression
// for the large-N inversion fix: at every row of the PairIndex layout,
// the first index (pair (a, a+1)) and the last index (pair (a, n-1))
// must invert exactly. These are the indices where the float estimate of
// the row sits closest to a row boundary, so any precision loss in the
// sqrt-based inverse shows up here first. Population sizes cover the
// million-node regime of the scale ladder (10⁵, 10⁶) plus 2·10⁶ as
// headroom.
func TestPairFromIndexRowBoundaries(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive row walk is a long-mode regression")
	}
	for _, n := range []int{1e5, 1e6, 2e6} {
		for a := 0; a < n-1; a++ {
			first := pairRowStart(n, a)
			last := pairRowStart(n, a+1) - 1
			if ga, gb := PairFromIndex(n, first); ga != a || gb != a+1 {
				t.Fatalf("n=%d: PairFromIndex(%d) = (%d,%d), want row start (%d,%d)", n, first, ga, gb, a, a+1)
			}
			if ga, gb := PairFromIndex(n, last); ga != a || gb != n-1 {
				t.Fatalf("n=%d: PairFromIndex(%d) = (%d,%d), want row end (%d,%d)", n, last, ga, gb, a, n-1)
			}
		}
	}
}

// TestPairFromIndexSmallBoundaries is the short-mode slice of the same
// regression: exhaustive inversion (every index, not just boundaries) at
// sizes small enough to brute-force, plus the four corner indices at the
// scale-ladder populations.
func TestPairFromIndexSmallBoundaries(t *testing.T) {
	for _, n := range []int{2, 3, 5, 17, 100, 317} {
		for idx := 0; idx < NumPairs(n); idx++ {
			a, b := PairFromIndex(n, idx)
			if a < 0 || b <= a || b >= n {
				t.Fatalf("n=%d idx=%d: invalid pair (%d,%d)", n, idx, a, b)
			}
			if got := PairIndex(n, a, b); got != idx {
				t.Fatalf("n=%d: PairIndex(PairFromIndex(%d)) = %d", n, idx, got)
			}
		}
	}
	for _, n := range []int{1e5, 1e6, 2e6} {
		for _, idx := range []int{0, n - 2, NumPairs(n) - 1, pairRowStart(n, n/2), pairRowStart(n, n/2) - 1} {
			a, b := PairFromIndex(n, idx)
			if got := PairIndex(n, a, b); got != idx {
				t.Fatalf("n=%d idx=%d: round trip gave (%d,%d) = index %d", n, idx, a, b, got)
			}
		}
	}
}

// TestPairFromIndexDegradedRadicand pins the NaN guard: when the float
// radicand collapses to a negative value (as the cancellation can
// produce past N ≈ 5·10⁷), the clamped estimate plus the exact integer
// correction must still recover the true row rather than propagating
// int(NaN). We can't force the rounding directly, but we can verify the
// inversion at a population large enough that m² exceeds float64's
// exact-integer range (2⁵³).
func TestPairFromIndexDegradedRadicand(t *testing.T) {
	n := 70_000_000 // m² ≈ 1.96e16 > 2^53: radicand arithmetic is inexact
	if float64(2*n-1)*float64(2*n-1) <= math.Pow(2, 53) {
		t.Fatalf("test population too small to leave the exact-integer range")
	}
	for _, idx := range []int{0, 1, n - 2, NumPairs(n) - 1, NumPairs(n) - (n - 1), pairRowStart(n, n/3), pairRowStart(n, n/3) - 1} {
		a, b := PairFromIndex(n, idx)
		if a < 0 || b <= a || b >= n {
			t.Fatalf("idx=%d: invalid pair (%d,%d)", idx, a, b)
		}
		if got := PairIndex(n, a, b); got != idx {
			t.Fatalf("idx=%d: round trip gave (%d,%d) = index %d", idx, a, b, got)
		}
	}
}
