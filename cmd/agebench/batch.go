package main

import (
	"fmt"
	"reflect"
	"testing"

	"impatience/internal/experiment"
	"impatience/internal/utility"
)

// pathResult measures one executor at one worker count.
type pathResult struct {
	Iterations  int   `json:"iterations"`
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
}

// batchEntry compares the sequential executor (materialize each trial's
// trace, simulate the schemes one at a time) against the batch executor
// (step every scheme in lockstep over one shared contact stream) on the
// identical workload at one worker count.
type batchEntry struct {
	Workers    int        `json:"workers"`
	Sequential pathResult `json:"sequential"`
	Batch      pathResult `json:"batch"`
	// NsRatio/BytesRatio/AllocsRatio are sequential over batch: > 1
	// means the batch executor wins.
	NsRatio     float64 `json:"ns_ratio"`
	BytesRatio  float64 `json:"bytes_ratio"`
	AllocsRatio float64 `json:"allocs_ratio"`
	// ResultsMatch records that both executors produced exactly equal
	// comparison outputs (per-scheme utilities, losses, bands) at this
	// worker count. The benchmark fails hard when it is false.
	ResultsMatch bool `json:"results_match"`
}

type batchReport struct {
	Benchmark string `json:"benchmark"`
	provenance
	scenarioParams
	Results []batchEntry `json:"results"`
}

// measurePath benchmarks one executor and reports its per-op stats.
func measurePath(run func() error) (pathResult, error) {
	var benchErr error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := run(); err != nil {
				benchErr = err
				b.FailNow()
			}
		}
	})
	if benchErr != nil {
		return pathResult{}, benchErr
	}
	if r.N == 0 {
		return pathResult{}, fmt.Errorf("benchmark did not run")
	}
	return pathResult{
		Iterations:  r.N,
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}, nil
}

// runBatch runs the BatchVsSequential ladder and writes BENCH_batch.json.
// Besides the timing/allocation comparison it is the executor-equivalence
// smoke check CI relies on: at every worker count both paths must produce
// exactly equal comparison outputs, or the run exits nonzero.
func runBatch(short bool, workers int, out string) error {
	sc := scenario(short)
	schemes := []string{experiment.SchemeQCR, experiment.SchemeOPT, experiment.SchemeUNI}
	u := utility.Step{Tau: 10}
	report := batchReport{
		Benchmark:      "BatchVsSequential/RunComparison",
		provenance:     stamp(short),
		scenarioParams: paramsOf(sc, schemes),
	}

	for _, w := range ladder(workers) {
		scw := sc
		scw.Workers = w

		// The equivalence check first: both executors consume the same
		// per-trial contact sequence (HomogeneousSources replays the
		// exact RNG draws HomogeneousTraces materializes), so their
		// outputs must be bit-identical, not merely close.
		seqCmp, err := scw.RunComparisonSequential(u, scw.HomogeneousTraces(), schemes)
		if err != nil {
			return err
		}
		batCmp, err := scw.RunComparison(u, scw.HomogeneousSources(), schemes)
		if err != nil {
			return err
		}
		match := reflect.DeepEqual(seqCmp, batCmp)
		if !match {
			return fmt.Errorf("workers=%d: batch executor diverged from sequential executor:\nsequential: %+v\nbatch:      %+v", w, seqCmp, batCmp)
		}

		seq, err := measurePath(func() error {
			_, err := scw.RunComparisonSequential(u, scw.HomogeneousTraces(), schemes)
			return err
		})
		if err != nil {
			return err
		}
		bat, err := measurePath(func() error {
			_, err := scw.RunComparison(u, scw.HomogeneousSources(), schemes)
			return err
		})
		if err != nil {
			return err
		}

		e := batchEntry{Workers: w, Sequential: seq, Batch: bat, ResultsMatch: match}
		if bat.NsPerOp > 0 {
			e.NsRatio = float64(seq.NsPerOp) / float64(bat.NsPerOp)
		}
		if bat.BytesPerOp > 0 {
			e.BytesRatio = float64(seq.BytesPerOp) / float64(bat.BytesPerOp)
		}
		if bat.AllocsPerOp > 0 {
			e.AllocsRatio = float64(seq.AllocsPerOp) / float64(bat.AllocsPerOp)
		}
		report.Results = append(report.Results, e)
		fmt.Printf("batch   workers=%d  sequential %12d ns/op %12d B/op  batch %12d ns/op %12d B/op  (%.2fx faster, %.2fx leaner, results match)\n",
			w, seq.NsPerOp, seq.BytesPerOp, bat.NsPerOp, bat.BytesPerOp, e.NsRatio, e.BytesRatio)
	}

	return writeJSON(out, report)
}
