package oracle

import "testing"

// TestHybridLadderPasses runs the hybrid-vs-sim check in isolation on
// the quick ladder: the mean-field fast path must land inside the full
// simulation's confidence-interval gate at every rung, on the fluid path
// (a fallback anywhere is an infrastructure failure inside the check).
func TestHybridLadderPasses(t *testing.T) {
	s := &session{cfg: Config{Seed: 1, Workers: 1, Hybrid: true}, p: quickParams()}
	res := s.checkHybridLadder()
	if !res.Pass {
		t.Fatalf("hybrid ladder failed (effect %.3f):\n%v", res.Effect, res.Details)
	}
	if len(res.Details) != len(quickParams().ladderN) {
		t.Errorf("%d rung lines for %d rungs", len(res.Details), len(quickParams().ladderN))
	}
	if res.Effect <= 0 || res.Effect > 1 {
		t.Errorf("effect %g outside (0, 1] on a passing run", res.Effect)
	}
}

// TestHybridCheckGated: the suite includes hybrid-vs-sim-ladder exactly
// when Config.Hybrid asks for it.
func TestHybridCheckGated(t *testing.T) {
	has := func(cfg Config) bool {
		s := &session{cfg: cfg, p: quickParams()}
		for _, c := range s.checks() {
			if c.name == "hybrid-vs-sim-ladder" {
				return true
			}
		}
		return false
	}
	if has(Config{}) {
		t.Error("hybrid check present without opt-in")
	}
	if !has(Config{Hybrid: true}) {
		t.Error("hybrid check missing with Hybrid set")
	}
}
