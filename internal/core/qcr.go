// Package core implements the paper's primary contribution: Query
// Counting Replication (QCR) with Mandate Routing (Section 5).
//
// QCR is a reactive, fully local replication protocol. Each outstanding
// request keeps a query counter incremented at every meeting; when the
// request is finally fulfilled the counter value y — whose expectation is
// |S|/x_i, a free local estimate of the item's replica scarcity — is fed
// to a reaction function ψ and ⌈ψ(y)⌉-ish replicas of the item are
// scheduled for creation. Because replicas cannot be minted on the spot
// in an opportunistic network, the schedule takes the form of replication
// mandates that execute (copy the item onto a node lacking it, evicting a
// random cache slot) when meetings allow, and that are routed toward
// nodes holding the item so they do not starve (Section 5.3). With ψ
// tuned per Property 2 to the population's delay-utility, the protocol's
// steady state is the optimal cache allocation.
//
// Beyond the paper's idealized evaluation (Section 6.1), the policy is
// hardened against injected faults (node churn, truncated meetings,
// mandate loss — see internal/faults): mandates carry a creation time and
// expire after MandateTTL so that mandates for an item whose holders all
// crashed do not circulate forever, and a per-mandate retry budget
// (MaxAttempts) bounds how often a mandate whose content transfer keeps
// failing is retried at later meetings. Both mechanisms are off by
// default and leave the fault-free protocol byte-identical.
package core

import (
	"fmt"
	"math"
	"math/rand/v2"
	"slices"

	"impatience/internal/utility"
)

// Cache is the view of the global distributed cache a replication policy
// acts through. It is implemented by the simulator's state.
type Cache interface {
	// Nodes and Items return the population and catalog sizes.
	Nodes() int
	Items() int
	// Has reports whether node's cache holds item.
	Has(node, item int) bool
	// Write inserts item into node's cache, evicting a uniformly random
	// non-sticky slot. It reports false when the write is impossible
	// (node already holds the item, all its slots are pinned, or the
	// current meeting's content-transfer phase failed).
	Write(node, item int) bool
	// StickyNode returns the node holding item's pinned replica, or -1.
	StickyNode(item int) int
	// Count returns the number of replicas of item across all caches.
	// A node learns it only approximately in a real DTN; the hardened
	// reaction uses it as the supply side of its replica clamp, standing
	// in for the gossip-estimated count a deployment would carry.
	Count(item int) int
}

// MaxQueryCount saturates the query counters: the simulator's per-meeting
// increment and the adversary layer's counter inflation both stop at this
// value, so a large per-node multiplier sustained over a long horizon can
// never overflow the int arithmetic the reaction functions consume. The
// honest expectation is E[y] = |S|/x_i ≪ 2³¹, so saturation is
// unreachable without an attack and changes no honest digest.
const MaxQueryCount = math.MaxInt32

// Policy decides replication. The simulator invokes OnFulfill once per
// fulfilled request and OnMeeting once per meeting (after fulfillments).
type Policy interface {
	Name() string
	// Init is called once before the simulation starts.
	Init(c Cache)
	// OnFulfill reports that node's request for item, whose query counter
	// reached queries, was fulfilled by peer at time now after waiting
	// age time units (0 for immediate local fulfillment).
	OnFulfill(c Cache, node, peer, item, queries int, age, now float64)
	// OnMeeting is invoked for every meeting of a and b at time now.
	OnMeeting(c Cache, a, b int, now float64)
}

// Disruptor models transport-level faults the simulator injects into the
// protocol's control plane. It is implemented by faults.Injector.
type Disruptor interface {
	// DropMandate draws whether one mandate handed to the other node at a
	// meeting is lost in flight.
	DropMandate() bool
}

// FaultAware policies accept fault wiring from the simulator before the
// run starts.
type FaultAware interface {
	SetDisruptor(d Disruptor)
}

// CrashAware policies are notified when a node crashes and must discard
// all protocol state held at that node. The return value is the number
// of pending mandates lost, for the run's fault tally.
type CrashAware interface {
	OnCrash(node int) int
}

// Misbehavior exposes the adversary layer's node roles to a policy. It is
// implemented by adversary.Injector.
type Misbehavior interface {
	// FreeRider reports whether node consumes content without serving:
	// it refuses cache writes and will not carry replication mandates.
	FreeRider(node int) bool
}

// AdversaryAware policies accept misbehavior wiring from the simulator
// before the run starts, so mandate routing can keep mandates off nodes
// that would refuse to carry them.
type AdversaryAware interface {
	SetMisbehavior(m Misbehavior)
}

// Static is the no-op policy used for the fixed-allocation competitors
// (OPT, UNI, SQRT, PROP, DOM): the cache is set up once by an oracle with
// a perfect control channel and never changes.
type Static struct{ Label string }

// Name implements Policy.
func (s Static) Name() string {
	if s.Label == "" {
		return "static"
	}
	return s.Label
}

// Init implements Policy.
func (Static) Init(Cache) {}

// OnFulfill implements Policy.
func (Static) OnFulfill(Cache, int, int, int, int, float64, float64) {}

// OnMeeting implements Policy.
func (Static) OnMeeting(Cache, int, int, float64) {}

// PassiveHooks implements PassivePolicy: a static allocation never reacts.
func (Static) PassiveHooks() bool { return true }

// PassivePolicy marks policies whose OnFulfill and OnMeeting hooks are
// guaranteed no-ops for the whole run: the simulator's devirtualized
// meeting loop elides the two virtual calls per contact (and one per
// fulfillment) entirely, which is measurable at millions of contacts per
// run. Implementations must return a constant; a policy whose hooks are
// only *sometimes* inert must not implement this interface. Eliding calls
// to true no-ops cannot change any simulation result — the digest tests
// pin that.
type PassivePolicy interface {
	PassiveHooks() bool
}

// IsPassive reports whether p declares both its per-meeting hooks to be
// no-ops (see PassivePolicy).
func IsPassive(p Policy) bool {
	pp, ok := p.(PassivePolicy)
	return ok && pp.PassiveHooks()
}

// ReactionFunc maps a final query-counter value to the (real-valued)
// number of replicas to create for the fulfilled item.
type ReactionFunc func(queries int) float64

// TunedReaction builds the Property-2 reaction function for delay-utility
// f under contact rate mu and server count servers: ψ(y) ∝ (S/y)·ϕ(S/y).
// scale sets the proportionality constant (1 is a reasonable default; it
// affects convergence speed and replication traffic, not the fixed
// point). The counter value 0 (immediate fulfillment) maps to 0.
func TunedReaction(f utility.Function, mu float64, servers int, scale float64) ReactionFunc {
	if scale <= 0 {
		scale = 1
	}
	S := float64(servers)
	return func(queries int) float64 {
		if queries <= 0 {
			return 0
		}
		return scale * utility.Psi(f, mu, S, float64(queries))
	}
}

// TunedReactions builds the per-item Property-2 reaction for a catalog
// whose items follow different delay-utilities; nil entries fall back to
// fallback (which may itself be nil when every entry is set).
func TunedReactions(fs []utility.Function, fallback utility.Function, mu float64, servers int, scale float64) func(item, queries int) float64 {
	if scale <= 0 {
		scale = 1
	}
	S := float64(servers)
	return func(item, queries int) float64 {
		if queries <= 0 {
			return 0
		}
		f := fallback
		if item < len(fs) && fs[item] != nil {
			f = fs[item]
		}
		if f == nil {
			return 0
		}
		return scale * utility.Psi(f, mu, S, float64(queries))
	}
}

// PathReplication is the classical ψ(y) = scale·y reaction of Cohen &
// Shenker, whose equilibrium is the square-root allocation; provided as a
// baseline reaction.
func PathReplication(scale float64) ReactionFunc {
	if scale <= 0 {
		scale = 1
	}
	return func(queries int) float64 {
		if queries <= 0 {
			return 0
		}
		return scale * float64(queries)
	}
}

// ConstantReaction is ψ(y) = c, the passive replication that converges to
// the proportional allocation (optimal only for neg-log impatience).
func ConstantReaction(c float64) ReactionFunc {
	return func(queries int) float64 {
		if queries <= 0 {
			return 0
		}
		return c
	}
}

// Hardening bundles the defenses of the rate-limited, clamped ψ reaction
// against adversarial query counters (dishonest nodes inflating y to game
// the reaction). All three knobs bound how far a forged counter can move
// the replica population; none changes the honest fixed point:
//
//   - CounterCap saturates the per-fulfillment counter credit. The honest
//     expectation is E[y] = |S|/x_i ≤ |S| (every item keeps x ≥ 1
//     replicas), so a cap of a few multiples of |S| never binds on honest
//     reports while flattening a ×M forged counter.
//   - SmoothAlpha rate-limits upward excursions of the reaction input:
//     each item keeps an EWMA ŷ = α·y + (1−α)·ŷ_prev of its capped
//     reports and the reaction is evaluated at min(y, ŷ), so a single
//     forged counter earns at most an α-fraction of its lie above the
//     recent history while reports at or below the running mean pass
//     through untouched. (Smoothing the input symmetrically would be
//     worse than nothing: the EWMA's memory of a forged report would
//     boost every later honest report of the same item, spreading the
//     lie instead of containing it.) For linear ψ the min against the
//     running mean is a near-uniform shrink of the effective reaction
//     scale across items, which slows convergence slightly but does not
//     move the fixed-point allocation.
//   - ReplicaClamp bounds an item's supply (current replicas plus pending
//     mandates) that minting may grow toward, derived from the
//     water-filling cap of the relaxed optimum: no honest trajectory
//     needs more than ~1.5× the largest x̃_i, so minting beyond it only
//     ever serves an attacker.
//
// A nil *Hardening on the QCR policy is a strict no-op: the vanilla
// reaction path runs byte-identically to a build without this type.
type Hardening struct {
	CounterCap   int     // saturate the reported counter (0 = off)
	SmoothAlpha  float64 // EWMA weight of the newest report, in (0,1]; 0 or 1 = off
	ReplicaClamp int     // per-item supply bound for minting (0 = off)
}

// Validate checks the hardening knobs' ranges.
func (h *Hardening) Validate() error {
	switch {
	case h == nil:
		return nil
	case h.CounterCap < 0:
		return fmt.Errorf("core: counter cap %d", h.CounterCap)
	case h.SmoothAlpha < 0 || h.SmoothAlpha > 1 || math.IsNaN(h.SmoothAlpha):
		return fmt.Errorf("core: smoothing alpha %g outside [0,1]", h.SmoothAlpha)
	case h.ReplicaClamp < 0:
		return fmt.Errorf("core: replica clamp %d", h.ReplicaClamp)
	}
	return nil
}

// mandate is one pending replication order. born is when the fulfillment
// that created it happened (mandates inherited at a handoff keep their
// original creation time); tries counts content-transfer attempts that
// failed, for the bounded-retry hardening.
type mandate struct {
	born  float64
	tries int
}

// QCR is the Query Counting Replication policy.
type QCR struct {
	// Reaction maps query-counter values to replica budgets. Required
	// unless PerItemReaction is set.
	Reaction ReactionFunc
	// PerItemReaction, when non-nil, overrides Reaction with a per-item
	// reaction function — the tuning for catalogs whose items follow
	// different delay-utilities (Section 3.2). See TunedReactions.
	PerItemReaction func(item, queries int) float64
	// MandateRouting moves mandates toward nodes holding the item
	// (Section 5.3). Disabling it reproduces the divergence pathology of
	// Figure 3 ("QCRWOM").
	MandateRouting bool
	// Rewriting consumes a mandate when both meeting nodes already hold
	// the item (Section 5.1, "replication with rewriting"). The paper's
	// evaluation keeps this off.
	Rewriting bool
	// StrictSource requires the mandate-holding node itself to possess
	// the item for a mandate to execute (Section 5.1's "transmit them
	// proactively": the replicator sources the copy). This is what makes
	// mandate routing essential — without routing, mandates stranded on
	// nodes that lost (or never had) the item stall indefinitely and the
	// allocation diverges (the Figure 3 pathology). With StrictSource
	// off, a mandate may also execute by pulling the copy from the peer
	// onto its own node, a more forgiving variant.
	StrictSource bool
	// MaxMandates caps the mandates created per fulfillment (0 = no cap).
	// Steep reaction functions (power utilities with α ≪ 1 have
	// ψ(y) ∝ y^{1-α}) occasionally meet a very large query counter and
	// emit replica bursts comparable to the whole global cache; the
	// resulting allocation variance hurts the concave welfare far more
	// than the clipped tail helps the equilibrium. A cap of about half
	// the server count preserves the fixed point in the common-counter
	// regime while taming the tail.
	MaxMandates int
	// MandateTTL discards mandates older than this at the next meeting
	// they surface at (0 = never expire). Under node churn every replica
	// of an item — including its sticky copy — can vanish in a crash;
	// with StrictSource such orphaned mandates could otherwise circulate
	// forever, bloating routing traffic and the mandate population
	// (Figure 3's divergence, resurrected by faults). Expiry is lazy: a
	// meeting is the only synchronization point an opportunistic network
	// has, so mandates parked on a node that never meets again linger in
	// TotalMandates until the run ends.
	MandateTTL float64
	// MaxAttempts bounds how many failed content-transfer attempts one
	// mandate survives (0 = unlimited). Truncated meetings (faults.PLoss)
	// complete the metadata exchange but lose the payload; the driving
	// mandate is then retained and retried at later meetings, up to this
	// budget, after which it is abandoned.
	MaxAttempts int
	// Seed makes the policy's randomized rounding and odd-mandate splits
	// deterministic.
	Seed uint64
	// Hardening enables the rate-limited, clamped reaction against
	// adversarial query counters. nil keeps the vanilla reaction path
	// byte-identical to a build without the hardening layer.
	Hardening *Hardening

	rng         *rand.Rand
	disruptor   Disruptor
	misbehavior Misbehavior
	ewma        []float64 // per item: smoothed reaction input (0 = no report yet)
	capped      int       // reports saturated by Hardening.CounterCap
	clamped     int       // mandates withheld by Hardening.ReplicaClamp
	nodes       int
	items       int
	piles       [][]mandate // piles[node*items+item]: pending mandates
	keys        [][]int32   // per node: sorted items with a non-empty pile
	scratch     []int32     // reusable union buffer for OnMeeting
	moved       int         // mandates that changed nodes (routing traffic)
	created     int         // mandates minted by OnFulfill
	executed    int         // mandates consumed by replication (incl. rewriting)
	expired     int         // mandates discarded by TTL expiry
	abandoned   int         // mandates discarded after exhausting MaxAttempts
	dropped     int         // mandates lost in flight at handoff
}

// Name implements Policy.
func (q *QCR) Name() string {
	if !q.MandateRouting {
		return "qcr-no-routing"
	}
	if q.Hardening != nil {
		return "qcr-hardened"
	}
	return "qcr"
}

// Init implements Policy.
func (q *QCR) Init(c Cache) {
	q.rng = rand.New(rand.NewPCG(q.Seed, q.Seed^0x51ce5ca1ab1e))
	q.nodes, q.items = c.Nodes(), c.Items()
	q.piles = make([][]mandate, q.nodes*q.items)
	q.keys = make([][]int32, q.nodes)
	q.scratch = nil
	q.ewma = nil
	if q.Hardening != nil {
		q.ewma = make([]float64, q.items)
	}
}

// pileAt returns the pending-mandate pile for item at node.
func (q *QCR) pileAt(node, item int) []mandate {
	return q.piles[node*q.items+item]
}

// setPile stores a pile back, keeping the node's sorted key list in sync
// with pile emptiness.
func (q *QCR) setPile(node, item int, pile []mandate) {
	idx := node*q.items + item
	had := len(q.piles[idx]) > 0
	q.piles[idx] = pile
	if len(pile) > 0 && !had {
		q.keys[node] = insertKey(q.keys[node], int32(item))
	} else if len(pile) == 0 && had {
		q.keys[node] = removeKey(q.keys[node], int32(item))
	}
}

// insertKey adds v to a sorted key list (no-op when already present).
func insertKey(list []int32, v int32) []int32 {
	at, ok := slices.BinarySearch(list, v)
	if ok {
		return list
	}
	list = append(list, 0)
	copy(list[at+1:], list[at:])
	list[at] = v
	return list
}

// removeKey deletes v from a sorted key list (no-op when absent).
func removeKey(list []int32, v int32) []int32 {
	at, ok := slices.BinarySearch(list, v)
	if !ok {
		return list
	}
	copy(list[at:], list[at+1:])
	return list[:len(list)-1]
}

// SetDisruptor implements FaultAware: the simulator wires its fault
// injector in before the run when fault injection is enabled.
func (q *QCR) SetDisruptor(d Disruptor) { q.disruptor = d }

// SetMisbehavior implements AdversaryAware: the simulator wires the
// adversary layer's node roles in before the run, so mandate routing
// steers mandates away from free-riders that would refuse to carry them.
func (q *QCR) SetMisbehavior(m Misbehavior) { q.misbehavior = m }

// HardeningCounters reports the hardened reaction's interventions:
// counter reports saturated by CounterCap and mandates withheld by the
// ReplicaClamp supply bound. Both are zero when Hardening is nil.
func (q *QCR) HardeningCounters() (capped, clamped int) {
	return q.capped, q.clamped
}

// OnCrash implements CrashAware: a crashed node loses its pending
// mandates along with its cache. Returns the number lost.
func (q *QCR) OnCrash(node int) int {
	var n int
	for _, it := range q.keys[node] {
		idx := node*q.items + int(it)
		n += len(q.piles[idx])
		q.piles[idx] = nil
	}
	q.keys[node] = q.keys[node][:0]
	return n
}

// TotalMandates returns the number of pending mandates across all nodes,
// the divergence indicator of Figure 3.
func (q *QCR) TotalMandates() int {
	var sum int
	for n := 0; n < q.nodes; n++ {
		for _, it := range q.keys[n] {
			sum += len(q.piles[n*q.items+int(it)])
		}
	}
	return sum
}

// MandatesMoved returns the cumulative number of mandates transferred
// between nodes by mandate routing — the protocol's control overhead
// beyond content transfers (mandates are tiny, but we account for them).
func (q *QCR) MandatesMoved() int { return q.moved }

// MandatesFor returns pending mandates for one item across all nodes.
func (q *QCR) MandatesFor(item int) int {
	var sum int
	for n := 0; n < q.nodes; n++ {
		sum += len(q.piles[n*q.items+item])
	}
	return sum
}

// MandatesCreated returns the cumulative number of mandates minted by
// OnFulfill, the input side of the mandate conservation law:
//
//	created = pending + executed + expired + abandoned + dropped + crashed
//
// (crashed is tallied by the simulator via OnCrash).
func (q *QCR) MandatesCreated() int { return q.created }

// MandatesExecuted returns mandates consumed by successful replication
// (including vacuous rewriting consumptions).
func (q *QCR) MandatesExecuted() int { return q.executed }

// FaultCounters reports the hardening tallies: mandates lost in flight
// at handoff, discarded by TTL expiry, and abandoned after exhausting
// their retry budget.
func (q *QCR) FaultCounters() (dropped, expired, abandoned int) {
	return q.dropped, q.expired, q.abandoned
}

// count returns the pending mandates for item at node (test hook).
func (q *QCR) count(node, item int) int { return len(q.pileAt(node, item)) }

// addMandates injects n mandates born at the given time (test hook).
func (q *QCR) addMandates(node, item, n int, born float64) {
	if n <= 0 {
		return
	}
	pile := q.pileAt(node, item)
	for k := 0; k < n; k++ {
		pile = append(pile, mandate{born: born})
	}
	q.setPile(node, item, pile)
	q.created += n
}

// OnFulfill implements Policy: convert the query count into mandates via
// the reaction function with randomized rounding (preserving E[replicas]
// = ψ(y), which the steady-state analysis of Section 5.2 relies on).
// With Hardening set, the counter credit is saturated and EWMA-smoothed
// before the reaction, and minting is clamped to the item's remaining
// supply headroom — see Hardening for why none of this moves the honest
// fixed point.
func (q *QCR) OnFulfill(c Cache, node, peer, item, queries int, age, now float64) {
	if h := q.Hardening; h != nil && queries > 0 {
		queries = q.hardenedInput(item, queries)
	}
	var r float64
	if q.PerItemReaction != nil {
		r = q.PerItemReaction(item, queries)
	} else {
		r = q.Reaction(queries)
	}
	if r <= 0 || math.IsNaN(r) {
		return
	}
	if q.MaxMandates > 0 && r > float64(q.MaxMandates) {
		r = float64(q.MaxMandates)
	}
	k := int(math.Floor(r))
	if q.rng.Float64() < r-math.Floor(r) {
		k++
	}
	if h := q.Hardening; h != nil && h.ReplicaClamp > 0 && k > 0 {
		room := h.ReplicaClamp - c.Count(item) - q.MandatesFor(item)
		if room < 0 {
			room = 0
		}
		if k > room {
			q.clamped += k - room
			k = room
		}
	}
	if k > 0 {
		pile := q.pileAt(node, item)
		for j := 0; j < k; j++ {
			pile = append(pile, mandate{born: now})
		}
		q.setPile(node, item, pile)
		q.created += k
	}
}

// hardenedInput applies the counter cap and the EWMA rate limiter to a
// reported query counter, returning the integer reaction input
// min(y, ŷ). The limited value rounds to the nearest integer — counters
// are integral to begin with and the reaction functions are continuous,
// so the residual quantization is below the randomized-rounding noise
// floor.
func (q *QCR) hardenedInput(item, queries int) int {
	h := q.Hardening
	y := queries
	if h.CounterCap > 0 && y > h.CounterCap {
		y = h.CounterCap
		q.capped++
	}
	if h.SmoothAlpha > 0 && h.SmoothAlpha < 1 {
		yf := float64(y)
		smoothed := yf
		if prev := q.ewma[item]; prev > 0 {
			smoothed = h.SmoothAlpha*yf + (1-h.SmoothAlpha)*prev
		}
		q.ewma[item] = smoothed
		if smoothed < yf {
			y = int(math.Round(smoothed))
		}
	}
	if y < 1 {
		y = 1
	}
	return y
}

// consume removes the oldest mandate of a pile (FIFO: the mandates that
// have waited longest execute first) and counts the execution.
func (q *QCR) consume(pile []mandate) []mandate {
	q.executed++
	return pile[1:]
}

// retryOrAbandon charges one failed content-transfer attempt to the
// mandate that would have driven the replication. With a retry budget
// set, a mandate that exhausts it is abandoned.
func (q *QCR) retryOrAbandon(pile []mandate) []mandate {
	pile[0].tries++
	if q.MaxAttempts > 0 && pile[0].tries >= q.MaxAttempts {
		q.abandoned++
		return pile[1:]
	}
	return pile
}

// expireOld discards mandates older than the TTL. Only called when
// MandateTTL > 0.
func (q *QCR) expireOld(pile []mandate, now float64) []mandate {
	keep := pile[:0]
	for _, m := range pile {
		if now-m.born > q.MandateTTL {
			q.expired++
		} else {
			keep = append(keep, m)
		}
	}
	return keep
}

// OnMeeting implements Policy: expire stale mandates, execute at most one
// mandate per item (creating a replica on whichever of the two nodes
// lacks the item), then route the remainder.
func (q *QCR) OnMeeting(c Cache, a, b int, now float64) {
	ka, kb := q.keys[a], q.keys[b]
	if len(ka) == 0 && len(kb) == 0 {
		return
	}
	// Merge the two sorted per-node key lists into the sorted union of
	// items with pending mandates on either side. The buffer is reused
	// across meetings; it must be a snapshot because the loop body edits
	// the key lists through setPile.
	union := q.scratch[:0]
	i, j := 0, 0
	for i < len(ka) && j < len(kb) {
		switch {
		case ka[i] < kb[j]:
			union = append(union, ka[i])
			i++
		case ka[i] > kb[j]:
			union = append(union, kb[j])
			j++
		default:
			union = append(union, ka[i])
			i++
			j++
		}
	}
	union = append(union, ka[i:]...)
	union = append(union, kb[j:]...)
	q.scratch = union
	for _, it := range union {
		item := int(it)
		pa, pb := q.pileAt(a, item), q.pileAt(b, item)
		origA, origB := len(pa), len(pb) // pre-meeting piles, for moved accounting
		if q.MandateTTL > 0 {
			pa = q.expireOld(pa, now)
			pb = q.expireOld(pb, now)
		}
		if len(pa)+len(pb) == 0 {
			q.setPile(a, item, pa)
			q.setPile(b, item, pb)
			continue
		}
		hasA, hasB := c.Has(a, item), c.Has(b, item)
		switch {
		case hasA && hasB:
			if q.Rewriting {
				// A (vacuous) replication consumes one mandate.
				if len(pa) >= len(pb) && len(pa) > 0 {
					pa = q.consume(pa)
				} else if len(pb) > 0 {
					pb = q.consume(pb)
				}
			}
		case hasA && !hasB:
			// The copy flows a → b. Under StrictSource only a's own
			// mandates can drive it; otherwise either side's can (the
			// holder's pile is consumed first when available).
			if q.StrictSource {
				if len(pa) > 0 {
					if c.Write(b, item) {
						pa = q.consume(pa)
						hasB = true
					} else {
						pa = q.retryOrAbandon(pa)
					}
				}
			} else if c.Write(b, item) {
				if len(pa) > 0 {
					pa = q.consume(pa)
				} else {
					pb = q.consume(pb)
				}
				hasB = true
			} else if len(pa) > 0 {
				pa = q.retryOrAbandon(pa)
			} else {
				pb = q.retryOrAbandon(pb)
			}
		case !hasA && hasB:
			if q.StrictSource {
				if len(pb) > 0 {
					if c.Write(a, item) {
						pb = q.consume(pb)
						hasA = true
					} else {
						pb = q.retryOrAbandon(pb)
					}
				}
			} else if c.Write(a, item) {
				if len(pb) > 0 {
					pb = q.consume(pb)
				} else {
					pa = q.consume(pa)
				}
				hasA = true
			} else if len(pb) > 0 {
				pb = q.retryOrAbandon(pb)
			} else {
				pa = q.retryOrAbandon(pa)
			}
		}
		if q.MandateRouting {
			wantA, _ := q.route(c, a, b, item, len(pa)+len(pb), hasA, hasB)
			// A free-rider refuses to carry mandates: nothing may cross to
			// it, and a non-free-riding peer takes everything it holds.
			if m := q.misbehavior; m != nil {
				frA, frB := m.FreeRider(a), m.FreeRider(b)
				switch {
				case frA && frB:
					wantA = len(pa)
				case frA:
					wantA = 0
				case frB:
					wantA = len(pa) + len(pb)
				}
			}
			pa, pb = q.redistribute(pa, pb, wantA)
		}
		// Routing traffic: any increase relative to the pre-meeting pile
		// crossed over (net of executions, matching the original metric).
		if gain := len(pa) - origA; gain > 0 {
			q.moved += gain
		}
		if gain := len(pb) - origB; gain > 0 {
			q.moved += gain
		}
		q.setPile(a, item, pa)
		q.setPile(b, item, pb)
	}
}

// redistribute realizes the routing split: mandates cross from the side
// holding more than its share to the other, oldest first. Each crossing
// mandate is independently lost in flight when a disruptor injects
// mandate-drop faults.
func (q *QCR) redistribute(pa, pb []mandate, wantA int) (na, nb []mandate) {
	switch {
	case wantA > len(pa): // b → a
		k := wantA - len(pa)
		for j := 0; j < k; j++ {
			m := pb[0]
			pb = pb[1:]
			if q.disruptor != nil && q.disruptor.DropMandate() {
				q.dropped++
				continue
			}
			pa = append(pa, m)
		}
	case wantA < len(pa): // a → b
		k := len(pa) - wantA
		for j := 0; j < k; j++ {
			m := pa[0]
			pa = pa[1:]
			if q.disruptor != nil && q.disruptor.DropMandate() {
				q.dropped++
				continue
			}
			pb = append(pb, m)
		}
	}
	return pa, pb
}

// route computes how an item's surviving mandates split between the two
// meeting nodes (Section 6.1): all to a sole holder, ceil(2/3) to the
// item's sticky node when both hold it, an even split otherwise.
func (q *QCR) route(c Cache, a, b, item, total int, hasA, hasB bool) (na, nb int) {
	if total == 0 {
		return 0, 0
	}
	sticky := c.StickyNode(item)
	switch {
	case hasA && !hasB:
		return total, 0
	case hasB && !hasA:
		return 0, total
	case sticky == a && hasA && hasB:
		na = (2*total + 2) / 3 // ceil(2/3·total)
		return na, total - na
	case sticky == b && hasA && hasB:
		nb = (2*total + 2) / 3
		return total - nb, nb
	default:
		// Both or neither hold the item: split evenly, odd one at random.
		na = total / 2
		nb = total - na
		if na != nb && q.rng.IntN(2) == 0 {
			na, nb = nb, na
		}
		return na, nb
	}
}
