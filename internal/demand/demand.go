// Package demand models client demand for content: item popularity
// distributions (the paper uses Pareto/Zipf with parameter ω), per-node
// popularity profiles π_{i,n}, and the Poisson request processes that the
// simulator draws request arrivals from.
package demand

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Popularity holds the per-item total demand rates d_i for a catalog of
// items. Rates are arbitrary non-negative reals; the paper's analysis
// works with any values.
type Popularity struct {
	Rates []float64 // d_i, indexed by item
}

// Items returns the catalog size.
func (p Popularity) Items() int { return len(p.Rates) }

// Total returns Σ_i d_i, the aggregate request rate.
func (p Popularity) Total() float64 {
	var sum float64
	for _, d := range p.Rates {
		sum += d
	}
	return sum
}

// Normalized returns a copy scaled so the aggregate rate is total.
func (p Popularity) Normalized(total float64) Popularity {
	cur := p.Total()
	out := Popularity{Rates: make([]float64, len(p.Rates))}
	if cur == 0 {
		return out
	}
	for i, d := range p.Rates {
		out.Rates[i] = d * total / cur
	}
	return out
}

// Clone returns a deep copy.
func (p Popularity) Clone() Popularity {
	return Popularity{Rates: append([]float64(nil), p.Rates...)}
}

// Validate reports an error when any rate is negative or non-finite.
func (p Popularity) Validate() error {
	for i, d := range p.Rates {
		if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
			return fmt.Errorf("demand: item %d has invalid rate %g", i, d)
		}
	}
	return nil
}

// DriftL1 measures how far popularity b has drifted from a as half the L1
// distance between the two normalized distributions — 0 for identical
// shapes (any scale), 1 for disjoint support. The serving layer compares
// it against a threshold to decide when a warm re-solve is worthwhile;
// total-rate changes alone do not move the optimal allocation's shape, so
// the metric deliberately ignores them.
func DriftL1(a, b Popularity) float64 {
	if len(a.Rates) != len(b.Rates) {
		return 1
	}
	ta, tb := a.Total(), b.Total()
	if ta == 0 || tb == 0 {
		if ta == tb {
			return 0
		}
		return 1
	}
	var d float64
	for i := range a.Rates {
		d += math.Abs(a.Rates[i]/ta - b.Rates[i]/tb)
	}
	return d / 2
}

// Pareto builds the paper's default popularity: d_i ∝ (i+1)^{-ω} for a
// catalog of items, scaled so the aggregate request rate equals total.
// ω = 1 is the value used throughout Section 6.
func Pareto(items int, omega, total float64) Popularity {
	p := Popularity{Rates: make([]float64, items)}
	for i := range p.Rates {
		p.Rates[i] = math.Pow(float64(i+1), -omega)
	}
	return p.Normalized(total)
}

// Uniform builds equal demand across the catalog with aggregate rate total.
func Uniform(items int, total float64) Popularity {
	p := Popularity{Rates: make([]float64, items)}
	for i := range p.Rates {
		p.Rates[i] = 1
	}
	return p.Normalized(total)
}

// Geometric builds d_i ∝ r^i for 0 < r < 1, a sharply skewed alternative
// used in ablations.
func Geometric(items int, r, total float64) Popularity {
	p := Popularity{Rates: make([]float64, items)}
	v := 1.0
	for i := range p.Rates {
		p.Rates[i] = v
		v *= r
	}
	return p.Normalized(total)
}

// Profile is the per-node demand split π_{i,n}: Profile[i][n] is the
// probability that a request for item i originates at client n, with
// Σ_n Profile[i][n] = 1 for each item that has demand.
type Profile struct {
	P [][]float64 // [item][client]
}

// UniformProfile builds the paper's default π_{i,n} = 1/|C|: every item is
// equally popular at every client.
func UniformProfile(items, clients int) Profile {
	p := Profile{P: make([][]float64, items)}
	for i := range p.P {
		row := make([]float64, clients)
		for n := range row {
			row[n] = 1 / float64(clients)
		}
		p.P[i] = row
	}
	return p
}

// Validate checks that every row with demand sums to 1 and entries are
// valid probabilities.
func (p Profile) Validate() error {
	for i, row := range p.P {
		var sum float64
		for n, v := range row {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return fmt.Errorf("demand: π[%d][%d]=%g invalid", i, n, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			return fmt.Errorf("demand: π row %d sums to %g, want 1", i, sum)
		}
	}
	return nil
}

// Request is one demand event: client Node wants Item at time T.
type Request struct {
	T    float64
	Node int
	Item int
}

// Process generates request arrivals. The aggregate process is Poisson
// with rate Σ d_i; each arrival picks an item with probability d_i/Σd and
// then a node from the item's profile row. This is exactly the
// superposition of the independent Poisson(d_i·π_{i,n}) processes of
// Section 3.3.
type Process struct {
	pop     Popularity
	profile Profile
	itemCDF []float64
	nodeCDF [][]float64
	total   float64
	rng     *rand.Rand
	now     float64
}

// NewProcess builds a request process starting at time 0. The profile must
// have one row per item; pass UniformProfile for the paper's default.
func NewProcess(pop Popularity, profile Profile, rng *rand.Rand) (*Process, error) {
	if err := pop.Validate(); err != nil {
		return nil, err
	}
	if len(profile.P) != pop.Items() {
		return nil, fmt.Errorf("demand: profile has %d rows for %d items", len(profile.P), pop.Items())
	}
	if err := profile.Validate(); err != nil {
		return nil, err
	}
	p := &Process{pop: pop, profile: profile, rng: rng, total: pop.Total()}
	p.itemCDF = cdf(pop.Rates)
	p.nodeCDF = make([][]float64, len(profile.P))
	for i, row := range profile.P {
		p.nodeCDF[i] = cdf(row)
	}
	return p, nil
}

// Total returns the aggregate request rate.
func (p *Process) Total() float64 { return p.total }

// Next returns the next request, advancing the process clock. It returns
// false when the aggregate rate is zero (no demand, no next event).
func (p *Process) Next() (Request, bool) {
	if p.total <= 0 {
		return Request{}, false
	}
	p.now += p.rng.ExpFloat64() / p.total
	item := sampleCDF(p.itemCDF, p.rng)
	node := sampleCDF(p.nodeCDF[item], p.rng)
	return Request{T: p.now, Node: node, Item: item}, true
}

// SetPopularity swaps the demand rates mid-run (used by the dynamic-demand
// extension experiment); the process clock is unchanged.
func (p *Process) SetPopularity(pop Popularity) error {
	if err := pop.Validate(); err != nil {
		return err
	}
	if pop.Items() != len(p.profile.P) {
		return fmt.Errorf("demand: new popularity has %d items, profile has %d", pop.Items(), len(p.profile.P))
	}
	p.pop = pop
	p.total = pop.Total()
	p.itemCDF = cdf(pop.Rates)
	return nil
}

// cdf converts non-negative weights into a cumulative distribution.
func cdf(w []float64) []float64 {
	out := make([]float64, len(w))
	var run float64
	for i, v := range w {
		run += v
		out[i] = run
	}
	if run > 0 {
		for i := range out {
			out[i] /= run
		}
	}
	// Force the last entry to exactly 1 to make sampling watertight.
	if len(out) > 0 {
		out[len(out)-1] = 1
	}
	return out
}

// sampleCDF draws an index from a cumulative distribution by binary search.
func sampleCDF(c []float64, rng *rand.Rand) int {
	u := rng.Float64()
	lo, hi := 0, len(c)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if c[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
