package experiment

import (
	"errors"
	"math"
	"testing"

	"impatience/internal/synth"
	"impatience/internal/trace"
	"impatience/internal/utility"
)

type traceAlias = trace.Trace

var errBoom = errors.New("boom")

// micro returns the smallest scenario that still exercises the full
// figure pipelines.
func micro() Scenario {
	sc := Default()
	sc.Nodes = 12
	sc.Items = 8
	sc.Rho = 2
	sc.Duration = 600
	sc.Trials = 1
	return sc
}

func microConf() synth.ConferenceConfig {
	cfg := synth.DefaultConference()
	cfg.Nodes = 12
	cfg.Days = 1
	return cfg
}

func microVeh() synth.VehicularConfig {
	cfg := synth.DefaultVehicular()
	cfg.Cabs = 12
	cfg.DurationMin = 240
	cfg.Width = 3000
	cfg.Height = 3000
	return cfg
}

func TestFigure3Pipeline(t *testing.T) {
	tables, err := Figure3(micro())
	if err != nil {
		t.Fatalf("Figure3: %v", err)
	}
	if len(tables) != 5 {
		t.Fatalf("got %d tables, want 5", len(tables))
	}
	// 3a: QCR's expected utility must end above QCRWOM's (the pathology).
	expT := tables[0]
	qcr, wom := expT.Columns[0].Y, expT.Columns[1].Y
	last := len(expT.X) - 1
	if qcr[last] < wom[last]-1e-9 {
		t.Errorf("QCR %g ended below QCRWOM %g", qcr[last], wom[last])
	}
	// 3e: QCRWOM's pending mandates must exceed QCR's at the end
	// (divergence under no routing).
	manT := tables[4]
	if manT.Columns[1].Y[last] <= manT.Columns[0].Y[last] {
		t.Errorf("no-routing mandates %g not above routing %g",
			manT.Columns[1].Y[last], manT.Columns[0].Y[last])
	}
}

func TestFigure4Pipelines(t *testing.T) {
	sc := micro()
	tb, err := Figure4Power(sc, []float64{0, 0.5})
	if err != nil {
		t.Fatalf("Figure4Power: %v", err)
	}
	if len(tb.X) != 2 || len(tb.Columns) != 5 {
		t.Errorf("power table shape %dx%d", len(tb.X), len(tb.Columns))
	}
	tb, err = Figure4Step(sc, []float64{10})
	if err != nil {
		t.Fatalf("Figure4Step: %v", err)
	}
	if len(tb.X) != 1 {
		t.Errorf("step table shape %d", len(tb.X))
	}
}

func TestFigure5Pipelines(t *testing.T) {
	sc := micro()
	tb, err := Figure5TimeSeries(sc, microConf(), 60)
	if err != nil {
		t.Fatalf("Figure5TimeSeries: %v", err)
	}
	if len(tb.Columns) != 6 {
		t.Errorf("5a columns %d, want 6 schemes", len(tb.Columns))
	}
	for _, memoryless := range []bool{false, true} {
		tb, err := Figure5Step(sc, microConf(), []float64{60}, memoryless)
		if err != nil {
			t.Fatalf("Figure5Step(memoryless=%v): %v", memoryless, err)
		}
		if len(tb.X) != 1 {
			t.Errorf("5b/5c x size %d", len(tb.X))
		}
	}
}

func TestFigure6Pipelines(t *testing.T) {
	sc := micro()
	for _, panel := range []string{"power", "step", "exp"} {
		var params []float64
		switch panel {
		case "power":
			params = []float64{0}
		case "step":
			params = []float64{60}
		case "exp":
			params = []float64{0.01}
		}
		tb, err := Figure6(sc, microVeh(), panel, params)
		if err != nil {
			t.Fatalf("Figure6(%s): %v", panel, err)
		}
		if len(tb.X) != 1 {
			t.Errorf("%s x size %d", panel, len(tb.X))
		}
	}
	if _, err := Figure6(sc, microVeh(), "bogus", nil); err == nil {
		t.Error("unknown panel accepted")
	}
}

func TestAblationPipelines(t *testing.T) {
	sc := micro()
	if _, err := AblationCacheSize(sc, []int{2, 3}, utility.Step{Tau: 10}); err != nil {
		t.Errorf("AblationCacheSize: %v", err)
	}
	if _, err := AblationPopularity(sc, []float64{0.5, 1.5}, utility.Step{Tau: 10}); err != nil {
		t.Errorf("AblationPopularity: %v", err)
	}
	if _, err := AblationRewriting(sc, utility.Power{Alpha: 0}); err != nil {
		t.Errorf("AblationRewriting: %v", err)
	}
	if _, err := DynamicDemand(sc, utility.Step{Tau: 10}); err != nil {
		t.Errorf("DynamicDemand: %v", err)
	}
	if _, err := ReactionComparison(sc, utility.Power{Alpha: 0}); err != nil {
		t.Errorf("ReactionComparison: %v", err)
	}
}

func TestExtensionPipelines(t *testing.T) {
	sc := micro()
	tb, err := OverheadComparison(sc, utility.Power{Alpha: 0})
	if err != nil {
		t.Fatalf("OverheadComparison: %v", err)
	}
	if len(tb.X) != 3 {
		t.Errorf("overhead rows %d", len(tb.X))
	}
	tb, err = MixedCatalog(sc)
	if err != nil {
		t.Fatalf("MixedCatalog: %v", err)
	}
	// Per-item tuned QCR should beat (or tie) the mis-tuned variant on
	// average even at micro scale.
	var tuned, mis float64
	for i := range tb.X {
		tuned += tb.Columns[0].Y[i]
		mis += tb.Columns[1].Y[i]
	}
	if tuned < mis-0.5*math.Abs(mis) {
		t.Errorf("per-item tuning much worse than mis-tuned: %g vs %g", tuned, mis)
	}
	if _, err := DedicatedKiosks(sc, 4); err != nil {
		t.Errorf("DedicatedKiosks: %v", err)
	}
	if _, err := DedicatedKiosks(sc, 0); err == nil {
		t.Error("0 servers accepted")
	}
	tb, err = AdaptiveImpatience(sc, 0.1)
	if err != nil {
		t.Fatalf("AdaptiveImpatience: %v", err)
	}
	if len(tb.Columns) != 4 {
		t.Errorf("adaptive columns %d", len(tb.Columns))
	}
}

func TestMemorylessOfPropagatesErrors(t *testing.T) {
	boom := func(seed uint64) (*traceAlias, error) { return nil, errBoom }
	gen := MemorylessOf(TraceGen(boom))
	if _, err := gen(1); err == nil {
		t.Error("generator error swallowed")
	}
}
