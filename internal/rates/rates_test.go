package rates

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"

	"impatience/internal/trace"
)

// TestConstructionValidation is the construction-time error table: every
// malformed model must be rejected at New/NewAssigned/constructor time
// with ErrModel, never deferred to sampling.
func TestConstructionValidation(t *testing.T) {
	sym := func(in, out float64, c int) [][]float64 {
		b := make([][]float64, c)
		for i := range b {
			b[i] = make([]float64, c)
			for j := range b[i] {
				if i == j {
					b[i][j] = in
				} else {
					b[i][j] = out
				}
			}
		}
		return b
	}
	cases := []struct {
		name  string
		build func() (*Model, error)
	}{
		{"no communities", func() (*Model, error) { return New(nil, nil, nil) }},
		{"empty community", func() (*Model, error) { return New([]int{3, 0, 2}, sym(1, 1, 3), nil) }},
		{"negative size", func() (*Model, error) { return New([]int{3, -1}, sym(1, 1, 2), nil) }},
		{"one node", func() (*Model, error) { return New([]int{1}, sym(1, 0, 1), nil) }},
		{"ragged block", func() (*Model, error) {
			return New([]int{2, 2}, [][]float64{{1, 1}, {1}}, nil)
		}},
		{"non-square block", func() (*Model, error) {
			return New([]int{2, 2}, [][]float64{{1, 1, 1}, {1, 1, 1}}, nil)
		}},
		{"non-symmetric block", func() (*Model, error) {
			return New([]int{2, 2}, [][]float64{{1, 0.5}, {0.6, 1}}, nil)
		}},
		{"negative rate", func() (*Model, error) {
			return New([]int{2, 2}, [][]float64{{1, -0.1}, {-0.1, 1}}, nil)
		}},
		{"NaN rate", func() (*Model, error) {
			return New([]int{2, 2}, [][]float64{{1, math.NaN()}, {math.NaN(), 1}}, nil)
		}},
		{"infinite rate", func() (*Model, error) {
			return New([]int{2, 2}, [][]float64{{math.Inf(1), 1}, {1, 1}}, nil)
		}},
		{"weight count mismatch", func() (*Model, error) {
			return New([]int{2, 2}, sym(1, 1, 2), []float64{1, 1, 1})
		}},
		{"negative weight", func() (*Model, error) {
			return New([]int{2, 2}, sym(1, 1, 2), []float64{1, -1, 1, 1})
		}},
		{"NaN weight", func() (*Model, error) {
			return New([]int{2, 2}, sym(1, 1, 2), []float64{1, math.NaN(), 1, 1})
		}},
		{"zero-weight community", func() (*Model, error) {
			return New([]int{2, 2}, sym(1, 1, 2), []float64{0, 0, 1, 1})
		}},
		{"zero total rate", func() (*Model, error) { return New([]int{2, 2}, sym(0, 0, 2), nil) }},
		{"community out of range", func() (*Model, error) {
			return NewAssigned([]int32{0, 2}, sym(1, 1, 2), nil)
		}},
		{"negative community", func() (*Model, error) {
			return NewAssigned([]int32{0, -1}, sym(1, 1, 2), nil)
		}},
		{"bad community cfg", func() (*Model, error) {
			return NewCommunity(CommunityConfig{Nodes: 3, Communities: 5, In: 1})
		}},
		{"bad hub cfg", func() (*Model, error) {
			return NewHubSpoke(HubSpokeConfig{Nodes: 5, Hubs: 5, HubHub: 1})
		}},
		{"bad distance grid", func() (*Model, error) {
			return NewDistanceKernel(DistanceConfig{Nodes: 10, CellsX: 0, CellsY: 2, Width: 100, Height: 100, Mu0: 1, Lambda: 10})
		}},
		{"bad distance mu0", func() (*Model, error) {
			return NewDistanceKernel(DistanceConfig{Nodes: 10, CellsX: 2, CellsY: 2, Width: 100, Height: 100, Mu0: 0, Lambda: 10})
		}},
		{"bad distance lambda", func() (*Model, error) {
			return NewDistanceKernel(DistanceConfig{Nodes: 10, CellsX: 2, CellsY: 2, Width: 100, Height: 100, Mu0: 1, Lambda: math.Inf(1)})
		}},
	}
	for _, c := range cases {
		m, err := c.build()
		if err == nil {
			t.Errorf("%s: accepted (model %v)", c.name, m)
			continue
		}
		if !errors.Is(err, ErrModel) {
			t.Errorf("%s: error %v does not wrap ErrModel", c.name, err)
		}
	}
}

// TestModelBasics checks the derived quantities on a hand-computable
// model: 2 communities of sizes 2 and 3, in-rate 0.6, cross 0.1.
func TestModelBasics(t *testing.T) {
	m, err := NewCommunity(CommunityConfig{Nodes: 5, Communities: 2, In: 0.6, Out: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	// 5 across 2: sizes 3 and 2.
	if m.Nodes() != 5 || m.Communities() != 2 {
		t.Fatalf("nodes=%d communities=%d", m.Nodes(), m.Communities())
	}
	// total = in·(C(3,2)+C(2,2)... sizes are 3 and 2: intra pairs 3+1,
	// cross pairs 6 → 0.6·4 + 0.1·6 = 3.0
	if got := m.TotalRate(); math.Abs(got-3.0) > 1e-12 {
		t.Errorf("TotalRate = %g, want 3.0", got)
	}
	if got := m.MeanPairRate(); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("MeanPairRate = %g, want 0.3", got)
	}
	if got := m.RateAt(0, 1); got != 0.6 {
		t.Errorf("RateAt(0,1) = %g, want 0.6 (intra)", got)
	}
	if got := m.RateAt(0, 4); got != 0.1 {
		t.Errorf("RateAt(0,4) = %g, want 0.1 (cross)", got)
	}
	if got := m.RateAt(2, 2); got != 0 {
		t.Errorf("RateAt(2,2) = %g, want 0", got)
	}
	rm, err := m.DenseRates()
	if err != nil {
		t.Fatal(err)
	}
	if got := rm.TotalRate(); math.Abs(got-3.0) > 1e-12 {
		t.Errorf("dense TotalRate = %g, want 3.0", got)
	}
	for a := 0; a < 5; a++ {
		for b := a + 1; b < 5; b++ {
			if rm.At(a, b) != m.RateAt(a, b) {
				t.Errorf("dense At(%d,%d) = %g, model %g", a, b, rm.At(a, b), m.RateAt(a, b))
			}
		}
	}
}

// randomCommunityModel draws a valid random block model for the property
// test: 2–6 communities of 1–12 members, block rates zeroed with
// probability 0.3, strictly positive node weights, and one guaranteed
// positive cross block so the total rate cannot vanish.
func randomCommunityModel(rng *rand.Rand) *Model {
	nc := 2 + rng.IntN(5)
	sizes := make([]int, nc)
	nodes := 0
	for c := range sizes {
		sizes[c] = 1 + rng.IntN(12)
		nodes += sizes[c]
	}
	block := make([][]float64, nc)
	for c := range block {
		block[c] = make([]float64, nc)
	}
	for c := 0; c < nc; c++ {
		for d := c; d < nc; d++ {
			r := 0.0
			if rng.Float64() > 0.3 {
				r = 0.05 + rng.Float64()
			}
			block[c][d], block[d][c] = r, r
		}
	}
	block[0][nc-1] = 0.2 + rng.Float64() // total rate cannot be zero
	block[nc-1][0] = block[0][nc-1]
	var weights []float64
	if rng.Float64() < 0.5 {
		weights = make([]float64, nodes)
		for i := range weights {
			weights[i] = 0.1 + rng.Float64()
		}
	}
	m, err := New(sizes, block, weights)
	if err != nil {
		panic(err) // generator bug, not a model property
	}
	return m
}

// TestTwoLevelProbabilityProperty is the 1e-12 equivalence property over
// 500 random community configs: the realized two-level sampling
// distribution — top-table block probability times the exact member-table
// probabilities (with the same-community pair-rejection normalization
// 2·q_a·q_b/(1−Σq²)) — must equal the normalized flat pair rates
// RateAt(a,b)/TotalRate to 1e-12, for every pair. The realized
// distributions are read back out of the alias tables via
// numeric.Alias.Probabilities, so this pins the tables actually sampled
// from, not the intended weights.
func TestTwoLevelProbabilityProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 4242))
	const configs = 500
	for cfg := 0; cfg < configs; cfg++ {
		m := randomCommunityModel(rng)
		src, err := NewSource(m, 100, 1)
		if err != nil {
			t.Fatalf("config %d: %v", cfg, err)
		}
		topP := src.top.Probabilities()
		memP := make([][]float64, len(m.members))
		rejNorm := make([]float64, len(m.members)) // 1 − Σ q_i² per community
		for c := range m.members {
			memP[c] = src.member[c].Probabilities()
			sq := 0.0
			for _, q := range memP[c] {
				sq += q * q
			}
			rejNorm[c] = 1 - sq
		}
		// Position of each node within its community's member slice.
		pos := make([]int, m.Nodes())
		for _, mem := range m.members {
			for i, n := range mem {
				pos[n] = i
			}
		}
		realized := make([]float64, trace.NumPairs(m.Nodes()))
		for k, cd := range m.pairC {
			c, d := int(cd[0]), int(cd[1])
			if c == d {
				mem := m.members[c]
				for i := 0; i < len(mem); i++ {
					for j := i + 1; j < len(mem); j++ {
						p := topP[k] * 2 * memP[c][i] * memP[c][j] / rejNorm[c]
						realized[trace.PairIndex(m.Nodes(), int(mem[i]), int(mem[j]))] += p
					}
				}
			} else {
				for _, a := range m.members[c] {
					for _, b := range m.members[d] {
						p := topP[k] * memP[c][pos[a]] * memP[d][pos[b]]
						realized[trace.PairIndex(m.Nodes(), int(a), int(b))] += p
					}
				}
			}
		}
		total := m.TotalRate()
		var sum float64
		for idx, p := range realized {
			sum += p
			a, b := trace.PairFromIndex(m.Nodes(), idx)
			want := m.RateAt(a, b) / total
			if math.Abs(p-want) > 1e-12 {
				t.Fatalf("config %d pair (%d,%d): realized %.17g, flat %.17g (|Δ| %g)",
					cfg, a, b, p, want, math.Abs(p-want))
			}
		}
		if math.Abs(sum-1) > 1e-10 {
			t.Fatalf("config %d: realized distribution sums to %.17g", cfg, sum)
		}
	}
}

// TestDenseRatesRefusesLargeN pins the O(N²) guard.
func TestDenseRatesRefusesLargeN(t *testing.T) {
	m, err := NewCommunity(CommunityConfig{Nodes: 30000, Communities: 4, In: 0.5, Out: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.DenseRates(); err == nil {
		t.Fatal("DenseRates materialized O(N²) state at N=30000")
	}
}
