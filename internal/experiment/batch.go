package experiment

import (
	"fmt"

	"impatience/internal/sim"
	"impatience/internal/trace"
	"impatience/internal/utility"
)

// Sourced adapts a materializing trace generator to the streaming seam:
// the trace is generated once per trial and handed out as a (reopenable)
// slice-backed source, so batch conversion costs no extra generation and
// stays bit-identical to iterating the slice directly. Use it for
// generators with no streaming twin (synthetic conference/vehicular
// traces); homogeneous contacts have the truly stream-native
// Scenario.HomogeneousSources.
func (g TraceGen) Sourced() SourceGen {
	return func(seed uint64) (trace.Source, error) {
		tr, err := g(seed)
		if err != nil {
			return nil, err
		}
		return tr.Source(), nil
	}
}

// HomogeneousSources is the streaming twin of HomogeneousTraces: the same
// seed derivation and the same RNG draws (see contact.NewReplayStream)
// yield the bit-identical contact sequence, lazily, in O(N²) memory.
func (sc Scenario) HomogeneousSources() SourceGen {
	return func(seed uint64) (trace.Source, error) {
		return contactReplay(sc.Nodes, sc.Mu, sc.Duration, seed, seed^0xabcdef)
	}
}

// asReopenable upgrades a source to a reopenable one: pass-through when
// the source already supports it, otherwise the stream is collected into
// a materialized trace once and reopened as slice views. The fallback
// reintroduces O(#contacts) memory, so production-scale generators should
// hand out reopenable sources directly.
func asReopenable(src trace.Source) (trace.Reopenable, error) {
	if ro, ok := src.(trace.Reopenable); ok {
		return ro, nil
	}
	tr, err := trace.Collect(src)
	if err != nil {
		return nil, err
	}
	return tr.Source(), nil
}

// batchConfigs builds the per-scheme simulation configs for one trial —
// each exactly the config runScheme would run, minus the contact input
// the batch executor supplies.
func (sc Scenario) batchConfigs(schemes []string, u utility.Function, rates *trace.RateMatrix, mu float64, trial uint64, series bool, plan *FaultPlan) ([]sim.Config, error) {
	cfgs := make([]sim.Config, len(schemes))
	for k, scheme := range schemes {
		cfg, err := sc.schemeConfig(scheme, u, rates, mu, trial, series, plan)
		if err != nil {
			return nil, fmt.Errorf("experiment: %s: %w", scheme, err)
		}
		cfgs[k] = cfg
	}
	return cfgs, nil
}

// runBatchOn steps every scheme in lockstep over the given contact pass.
// rates must be the empirical rate matrix of the same contact sequence
// (the static allocations are built from it) and mu the ψ plug-in rate.
// sc.Shards selects the sharded executor (bit-identical; see Scenario).
func (sc Scenario) runBatchOn(schemes []string, u utility.Function, rates *trace.RateMatrix, mu float64, trial uint64, series bool, plan *FaultPlan, contacts trace.Source) ([]*sim.Result, error) {
	cfgs, err := sc.batchConfigs(schemes, u, rates, mu, trial, series, plan)
	if err != nil {
		return nil, err
	}
	return sim.RunBatchSharded(cfgs, contacts, sc.Shards)
}

// RunSchemesBatch runs every scheme of one trial over a single shared
// contact stream: pass one accumulates the empirical rate matrix the
// static allocations need, pass two (a reopened view of the same
// sequence) drives the lockstep multi-scheme simulation. mu ≤ 0 selects
// the empirical mean rate (heterogeneous traces); a positive mu is used
// as the ψ plug-in rate directly (the homogeneous figures pass sc.Mu).
// Per-scheme results are bit-identical to running runScheme per scheme
// over the materialized trace — the equivalence TestBatchMatchesSequential
// pins against the golden digests.
func (sc Scenario) RunSchemesBatch(schemes []string, u utility.Function, src trace.Source, mu float64, trial uint64, series bool, plan *FaultPlan) ([]*sim.Result, error) {
	if src.Nodes() != sc.Nodes {
		return nil, fmt.Errorf("experiment: trace has %d nodes, scenario %d", src.Nodes(), sc.Nodes)
	}
	ro, err := asReopenable(src)
	if err != nil {
		return nil, err
	}
	second, err := ro.Reopen()
	if err != nil {
		return nil, err
	}
	rates, err := trace.EmpiricalRatesFrom(ro)
	if err != nil {
		return nil, err
	}
	if mu <= 0 {
		mu = rates.Mean()
		if mu <= 0 {
			return nil, fmt.Errorf("experiment: empty trace")
		}
	}
	return sc.runBatchOn(schemes, u, rates, mu, trial, series, plan, second)
}
