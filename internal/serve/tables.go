package serve

import (
	"fmt"
	"math"
	"sync"

	"impatience/internal/utility"
)

// Tables holds the precomputed ϕ/ψ values for one delay-utility at one
// (µ, |S|) operating point: Psi(y) for integer query counters y = 1..|S|
// (the QCR reaction of Property 2 only ever sees counters in that range)
// and Phi(x) on the same integer grid. Building one costs |S| transform
// evaluations — trivial for closed-form families, expensive for Generic
// quadrature utilities, which is why the cache exists.
type Tables struct {
	Utility string // canonical name, e.g. "step(τ=10)"
	Mu      float64
	Servers int
	psi     []float64 // psi[y-1] = ψ(y), y = 1..Servers
	phi     []float64 // phi[x-1] = ϕ(x), x = 1..Servers
}

// Psi returns ψ(y) for an integer counter 1 ≤ y ≤ |S|; out-of-range
// counters return NaN so callers cannot mistake them for a valid reaction.
func (t *Tables) Psi(y int) float64 {
	if y < 1 || y > len(t.psi) {
		return math.NaN()
	}
	return t.psi[y-1]
}

// Phi returns ϕ(x) for an integer replica count 1 ≤ x ≤ |S|.
func (t *Tables) Phi(x int) float64 {
	if x < 1 || x > len(t.phi) {
		return math.NaN()
	}
	return t.phi[x-1]
}

// TableCache caches Tables keyed by the *canonical* utility name (so the
// spec aliases "exp:0.5" and "exponential:0.5" share one entry) plus the
// (µ, |S|) operating point. The cache holds at most max entries; when
// full, an arbitrary entry is evicted — the workload is a handful of hot
// utilities, so any eviction policy keeps them resident.
type TableCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*Tables
}

// NewTableCache builds a cache bounded to max entries (minimum 1).
func NewTableCache(max int) *TableCache {
	if max < 1 {
		max = 1
	}
	return &TableCache{max: max, entries: make(map[string]*Tables)}
}

// Len returns the number of cached tables.
func (c *TableCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// key builds the cache key from the canonical utility name and the
// operating point. %.17g keeps distinct float64 µ values distinct.
func tableKey(canonical string, mu float64, servers int) string {
	return fmt.Sprintf("%s|mu=%.17g|S=%d", canonical, mu, servers)
}

// Get parses spec, returns the cached Tables for its canonical name at
// (µ, |S|), building and inserting them on a miss. Unknown specs and
// invalid operating points are errors; the cache is not mutated on error.
func (c *TableCache) Get(spec string, mu float64, servers int) (*Tables, error) {
	f, err := utility.Parse(spec)
	if err != nil {
		return nil, err
	}
	if !(mu > 0) || math.IsInf(mu, 1) {
		return nil, fmt.Errorf("serve: table for µ=%g, want finite > 0", mu)
	}
	if servers < 1 {
		return nil, fmt.Errorf("serve: table for %d servers, want ≥ 1", servers)
	}
	key := tableKey(f.Name(), mu, servers)
	c.mu.Lock()
	defer c.mu.Unlock()
	if t, ok := c.entries[key]; ok {
		return t, nil
	}
	t := buildTables(f, mu, servers)
	if len(c.entries) >= c.max {
		for k := range c.entries {
			delete(c.entries, k)
			break
		}
	}
	c.entries[key] = t
	return t, nil
}

func buildTables(f utility.Function, mu float64, servers int) *Tables {
	t := &Tables{
		Utility: f.Name(),
		Mu:      mu,
		Servers: servers,
		psi:     make([]float64, servers),
		phi:     make([]float64, servers),
	}
	for k := 1; k <= servers; k++ {
		t.psi[k-1] = utility.Psi(f, mu, float64(servers), float64(k))
		t.phi[k-1] = f.Phi(mu, float64(k))
	}
	return t
}
