package meanfield

import (
	"errors"
	"math"
	"testing"

	"impatience/internal/demand"
	"impatience/internal/utility"
)

// oneCommunity builds a single-block system equivalent to sys(f): 50
// nodes at pairwise rate 0.05.
func oneCommunity(f utility.Function) BlockSystem {
	pop := demand.Pareto(20, 1, 1)
	return BlockSystem{
		Utility: f,
		Sizes:   []int{50},
		Block:   [][]float64{{0.05}},
		Demand:  [][]float64{append([]float64(nil), pop.Rates...)},
		Rho:     5,
	}
}

// twoCommunities is an asymmetric intra/cross block model.
func twoCommunities(f utility.Function) BlockSystem {
	pop := demand.Pareto(16, 1, 1)
	dA := make([]float64, 16)
	dB := make([]float64, 16)
	for i, d := range pop.Rates {
		dA[i] = d * 40.0 / 64
		dB[i] = d * 24.0 / 64
	}
	return BlockSystem{
		Utility: f,
		Sizes:   []int{40, 24},
		Block:   [][]float64{{0.08, 0.01}, {0.01, 0.12}},
		Demand:  [][]float64{dA, dB},
		Rho:     3,
	}
}

// TestBlockMassConservation: each community's cache budget is invariant
// under the dynamics.
func TestBlockMassConservation(t *testing.T) {
	b := twoCommunities(utility.Step{Tau: 10})
	x := b.UniformStart()
	// Perturb within budget to leave the uniform fixed line.
	x[0] += 5
	x[1] -= 5
	dst := make([]float64, len(x))
	b.Derivs(0, x, dst)
	items := b.Items()
	for k := range b.Sizes {
		var sum float64
		for i := 0; i < items; i++ {
			sum += dst[k*items+i]
		}
		if math.Abs(sum) > 1e-9 {
			t.Errorf("community %d: Σ dx/dt = %g, want 0", k, sum)
		}
	}
}

// TestBlockReducesToHomogeneous: with one community, the block fixed
// point must match System's Eq. 7 fixed point.
func TestBlockReducesToHomogeneous(t *testing.T) {
	f := utility.Step{Tau: 10}
	s := sys(f)
	want, ok, err := s.RunToSteadyState(s.UniformStart(), 200000, 2, 1e-8)
	if err != nil || !ok {
		t.Fatalf("homogeneous steady state: ok=%v err=%v", ok, err)
	}
	b := oneCommunity(f)
	got, err := b.Run(b.UniformStart(), 200000, 2)
	if err != nil {
		t.Fatalf("block run: %v", err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 0.05*math.Max(1, want[i]) {
			t.Errorf("item %d: block %g vs homogeneous %g", i, got[i], want[i])
		}
	}
}

// TestBlockCommunityCoupling: an isolated community with zero demand for
// an item keeps losing it, while cross-community contacts replicate it
// in the demanding community.
func TestBlockDynamicsMoveTowardDemand(t *testing.T) {
	b := twoCommunities(utility.Power{Alpha: 0})
	x0 := b.UniformStart()
	x, err := b.Run(x0, 50000, 1)
	if err != nil {
		t.Fatal(err)
	}
	items := b.Items()
	// Popular items (low index under Pareto) must end with more replicas
	// than the uniform start in both communities.
	for k := range b.Sizes {
		if x[k*items+0] <= x0[k*items+0] {
			t.Errorf("community %d: top item fell %g → %g under dynamics", k, x0[k*items+0], x[k*items+0])
		}
		if x[k*items+items-1] >= x0[k*items+items-1] {
			t.Errorf("community %d: tail item rose %g → %g", k, x0[k*items+items-1], x[k*items+items-1])
		}
	}
}

func TestBlockValidateTable(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*BlockSystem)
	}{
		{"nil-utility", func(b *BlockSystem) { b.Utility = nil }},
		{"no-communities", func(b *BlockSystem) { b.Sizes = nil }},
		{"zero-size", func(b *BlockSystem) { b.Sizes[0] = 0 }},
		{"zero-rho", func(b *BlockSystem) { b.Rho = 0 }},
		{"ragged-block", func(b *BlockSystem) { b.Block[1] = b.Block[1][:1] }},
		{"nan-block", func(b *BlockSystem) { b.Block[0][1] = math.NaN() }},
		{"negative-block", func(b *BlockSystem) { b.Block[1][0] = -1 }},
		{"inf-demand", func(b *BlockSystem) { b.Demand[0][2] = math.Inf(1) }},
		{"negative-demand", func(b *BlockSystem) { b.Demand[1][0] = -0.5 }},
		{"nan-psi", func(b *BlockSystem) { b.PsiScale = math.NaN() }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := twoCommunities(utility.Step{Tau: 10})
			tc.mut(&b)
			err := b.Validate()
			if err == nil {
				t.Fatal("invalid block system accepted")
			}
			if !errors.Is(err, ErrSystem) {
				t.Errorf("error %v does not wrap ErrSystem", err)
			}
		})
	}
	b := twoCommunities(utility.Step{Tau: 10})
	if err := b.Validate(); err != nil {
		t.Fatalf("valid block system rejected: %v", err)
	}
	if _, err := b.Stepper(make([]float64, 3), 0, 0); !errors.Is(err, ErrSystem) {
		t.Errorf("short state accepted: %v", err)
	}
}
