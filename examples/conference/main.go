// Conference: trace-driven replication on a synthetic Infocom'06-like
// contact trace (heterogeneous sociability, day/night cycles, bursty
// inter-contacts — see internal/synth and DESIGN.md for the substitution
// rationale).
//
// Attendees share session recordings; interest decays with a one-hour
// deadline. The program pits QCR — which only sees local query counters —
// against fixed allocations installed by an oracle with a perfect control
// channel, including the submodular-greedy OPT computed from the trace's
// measured pairwise rates.
//
// Run with: go run ./examples/conference
package main

import (
	"fmt"
	"math/rand/v2"
	"os"

	"impatience"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "conference:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		items = 50
		rho   = 5
		tau   = 60.0 // minutes
	)
	cfg := impatience.DefaultConference()
	rng := rand.New(rand.NewPCG(7, 77))
	tr, err := impatience.ConferenceTrace(cfg, rng)
	if err != nil {
		return err
	}
	rates := impatience.EmpiricalRates(tr)
	fmt.Printf("conference trace: %d nodes, %.0f days, %d contacts, mean pair rate %.5f/min\n\n",
		tr.Nodes, tr.Duration/1440, len(tr.Contacts), rates.Mean())

	u := impatience.Step{Tau: tau}
	pop := impatience.ParetoPopularity(items, 1, 2)

	// Heterogeneous OPT from the measured rates (memoryless approximation,
	// exactly like the paper's Section 6.3).
	ids := make([]int, tr.Nodes)
	for i := range ids {
		ids[i] = i
	}
	het := impatience.Hetero{
		Utility: u, Pop: pop,
		Profile: uniformProfile(items, tr.Nodes),
		Rates:   rates, Clients: ids, Servers: ids,
	}
	optPlacement, err := het.GreedySubmodular(rho)
	if err != nil {
		return err
	}

	type entry struct {
		name   string
		policy impatience.ReplicationPolicy
		counts impatience.AllocationCounts
		place  *impatience.Placement
	}
	entries := []entry{
		{name: "OPT", policy: impatience.StaticPolicy{Label: "opt"}, place: optPlacement},
		{name: "UNI", policy: impatience.StaticPolicy{Label: "uni"}, counts: impatience.UniformAllocation(items, tr.Nodes, rho)},
		{name: "SQRT", policy: impatience.StaticPolicy{Label: "sqrt"}, counts: impatience.SqrtAllocation(pop.Rates, tr.Nodes, rho)},
		{name: "PROP", policy: impatience.StaticPolicy{Label: "prop"}, counts: impatience.PropAllocation(pop.Rates, tr.Nodes, rho)},
		{name: "DOM", policy: impatience.StaticPolicy{Label: "dom"}, counts: impatience.DomAllocation(pop.Rates, tr.Nodes, rho)},
		{name: "QCR", policy: &impatience.QCR{
			Reaction:       impatience.TunedReaction(u, rates.Mean(), tr.Nodes, 0.1),
			MandateRouting: true,
			StrictSource:   true,
			MaxMandates:    5, Seed: 3,
		}},
	}

	var uOpt float64
	fmt.Printf("%-6s %16s %12s\n", "scheme", "utility (gain/min)", "loss vs OPT")
	for _, e := range entries {
		cfg := impatience.SimConfig{
			Rho: rho, Utility: u, Pop: pop, Trace: tr, Policy: e.policy, Seed: 11,
		}
		switch {
		case e.place != nil:
			cfg.InitialPlacement = e.place
			cfg.NoSticky = true
		case e.counts != nil:
			cfg.Initial = e.counts
			cfg.NoSticky = true
		}
		res, err := impatience.Simulate(cfg)
		if err != nil {
			return err
		}
		if e.name == "OPT" {
			uOpt = res.AvgUtilityRate
			fmt.Printf("%-6s %16.4f %12s\n", e.name, res.AvgUtilityRate, "—")
			continue
		}
		fmt.Printf("%-6s %16.4f %11.1f%%\n", e.name, res.AvgUtilityRate,
			100*(res.AvgUtilityRate-uOpt)/abs(uOpt))
	}
	fmt.Println("\nQCR uses only local query counters; every competitor needed a perfect control channel.")
	return nil
}

func uniformProfile(items, nodes int) impatience.Profile {
	p := impatience.Profile{P: make([][]float64, items)}
	for i := range p.P {
		row := make([]float64, nodes)
		for n := range row {
			row[n] = 1 / float64(nodes)
		}
		p.P[i] = row
	}
	return p
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
