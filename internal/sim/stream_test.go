package sim

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"impatience/internal/contact"
	"impatience/internal/core"
	"impatience/internal/demand"
	"impatience/internal/trace"
	"impatience/internal/utility"
)

// -update rewrites the committed golden digest instead of comparing;
// see TestStreamFusedGolden.
var update = flag.Bool("update", false, "rewrite testdata golden digests instead of comparing")

// TestStreamAdapterMatchesMaterialized: driving the simulator through
// Config.Contacts with an adapter over the same trace must be
// bit-identical to the materialized path — same seed, same Digest. This
// is the equivalence that lets experiments switch paths freely.
func TestStreamAdapterMatchesMaterialized(t *testing.T) {
	tr := smallTrace(t, 12, 0.05, 800, 9)
	for _, tc := range []struct {
		name string
		pol  func() core.Policy
	}{
		{"static", func() core.Policy { return core.Static{Label: "uni"} }},
		{"qcr", func() core.Policy {
			return &core.QCR{
				Reaction:       core.TunedReaction(utility.Step{Tau: 10}, 0.05, 12, 1),
				MandateRouting: true,
				StrictSource:   true,
				Seed:           7,
			}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			mat := baseConfig(t, tr, tc.pol())
			mat.BinWidth = 80
			want, err := Run(mat)
			if err != nil {
				t.Fatalf("materialized Run: %v", err)
			}
			str := baseConfig(t, nil, tc.pol())
			str.BinWidth = 80
			str.Trace = nil
			str.Contacts = tr.Source()
			got, err := Run(str)
			if err != nil {
				t.Fatalf("streaming Run: %v", err)
			}
			if got.Digest() != want.Digest() {
				t.Errorf("digest mismatch: streaming %#x != materialized %#x", got.Digest(), want.Digest())
			}
		})
	}
}

// fusedConfig wires a fused generate+simulate run: the contact stream is
// drawn lazily inside Run, never materialized.
func fusedConfig(t *testing.T, nodes int, mu, duration float64, seed uint64) Config {
	t.Helper()
	src, err := contact.NewHomogeneousStream(nodes, mu, duration, newRNG(seed))
	if err != nil {
		t.Fatalf("NewHomogeneousStream: %v", err)
	}
	return Config{
		Rho:      3,
		Utility:  utility.Step{Tau: 10},
		Pop:      demand.Pareto(10, 1, 2),
		Contacts: src,
		Policy: &core.QCR{
			Reaction:       core.TunedReaction(utility.Step{Tau: 10}, mu, nodes, 1),
			MandateRouting: true,
			StrictSource:   true,
			Seed:           7,
		},
		Seed: 1,
	}
}

// TestStreamFusedGolden pins the fused path's own determinism: the
// streaming generator has its own RNG stream (distinct from the legacy
// materialized generator — see internal/contact), so it carries its own
// golden digest, committed under testdata/. Same seed → same digest, run
// to run and release to release. After an INTENDED behavior change,
// regenerate with:
//
//	go test ./internal/sim -run TestStreamFusedGolden -update
func TestStreamFusedGolden(t *testing.T) {
	const goldenPath = "testdata/fused_golden.txt"
	run := func() uint64 {
		res, err := Run(fusedConfig(t, 12, 0.05, 800, 9))
		if err != nil {
			t.Fatalf("fused Run: %v", err)
		}
		return res.Digest()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("fused run not deterministic: %#x vs %#x", a, b)
	}
	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(fmt.Sprintf("%#016x\n", a)), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath)
		return
	}
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read %s (regenerate with -update): %v", goldenPath, err)
	}
	var want uint64
	if _, err := fmt.Sscanf(strings.TrimSpace(string(data)), "0x%x", &want); err != nil {
		t.Fatalf("parse %s: %v", goldenPath, err)
	}
	if a != want {
		t.Errorf("fused golden digest %#x, want %#x (streaming RNG contract changed; rerun with -update if intended)", a, want)
	}
}

// TestStreamRejectsBadSources: dimension and ordering violations surface
// as errors, not silent corruption.
func TestStreamRejectsBadSources(t *testing.T) {
	good := fusedConfig(t, 12, 0.05, 800, 9)

	both := good
	both.Trace = smallTrace(t, 12, 0.05, 100, 1)
	if _, err := Run(both); err == nil {
		t.Error("config with both Trace and Contacts accepted")
	}

	tiny := good
	tiny.Contacts = (&trace.Trace{Nodes: 1, Duration: 100}).Source()
	if _, err := Run(tiny); err == nil {
		t.Error("1-node source accepted")
	}

	// Out-of-order and out-of-range streams must fail mid-run: the
	// adapter yields the raw slice, so sim's per-contact check is the
	// only guard.
	disordered := good
	disordered.Contacts = (&trace.Trace{Nodes: 4, Duration: 100, Contacts: []trace.Contact{
		{T: 50, A: 0, B: 1}, {T: 10, A: 1, B: 2},
	}}).Source()
	if _, err := Run(disordered); err == nil {
		t.Error("out-of-order stream accepted")
	}

	outOfRange := good
	outOfRange.Contacts = (&trace.Trace{Nodes: 4, Duration: 100, Contacts: []trace.Contact{
		{T: 10, A: 0, B: 9},
	}}).Source()
	if _, err := Run(outOfRange); err == nil {
		t.Error("out-of-range endpoint accepted")
	}
}

// TestStepZeroAllocSteadyState is the allocation regression test behind
// the fused pipeline's throughput claim: once every (node, item) request
// queue has been touched, the per-contact hot path — arrival drain,
// meeting, fulfillment, bookkeeping — runs without heap allocation, so
// streamed runs of any length keep a flat memory profile.
func TestStepZeroAllocSteadyState(t *testing.T) {
	const (
		nodes    = 8
		items    = 6
		duration = 1e12
		dt       = 0.01
	)
	cfg := Config{
		Rho:        3,
		Utility:    utility.Step{Tau: 10},
		Pop:        demand.Pareto(items, 1, 2),
		Contacts:   (&trace.Trace{Nodes: nodes, Duration: duration}).Source(),
		Policy:     core.Static{Label: "uni"},
		Seed:       5,
		WarmupFrac: -1,
	}
	r, err := newRunner(&cfg)
	if err != nil {
		t.Fatalf("newRunner: %v", err)
	}
	// Cycle through every pair so all request queues and outstanding-item
	// lists reach their steady-state capacity during warmup.
	var pairs []trace.Contact
	for a := 0; a < nodes; a++ {
		for b := a + 1; b < nodes; b++ {
			pairs = append(pairs, trace.Contact{A: a, B: b})
		}
	}
	now, pi := 0.0, 0
	stepOne := func() {
		c := pairs[pi]
		pi = (pi + 1) % len(pairs)
		now += dt
		c.T = now
		if err := r.step(c); err != nil {
			t.Fatalf("step: %v", err)
		}
	}
	for i := 0; i < 50000; i++ {
		stepOne()
	}
	// Not exactly 0.0: a request queue whose depth exceeds anything seen
	// in warmup can still grow once. The bound catches any systematic
	// per-contact allocation while tolerating such one-offs.
	if avg := testing.AllocsPerRun(20000, stepOne); avg > 0.01 {
		t.Errorf("steady-state step allocates %.4f objects/contact, want 0", avg)
	}
}
