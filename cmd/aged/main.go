// Command aged is the online allocation daemon: it wraps the solver
// stack (internal/numeric water-filling, internal/utility ϕ/ψ
// transforms, internal/demand estimation) behind an HTTP API and keeps
// the relaxed welfare optimum of Theorem 2 current as demand drifts.
//
// Clients POST observation windows to /v1/observe; the daemon folds them
// into an EWMA demand estimate and, when the estimate has drifted past
// the configured L1 threshold since the last solve, re-solves the
// allocation — warm-starting from the previous allocation and dual level,
// with a certified fallback to the cold solver. GET /v1/allocation
// returns the current optimum, GET /v1/psi serves the cached QCR reaction
// tables, and POST /v1/snapshot (plus -snapshot-every) persists state for
// crash recovery; at boot an existing snapshot is restored automatically.
//
// Usage:
//
//	aged -addr :8642 -items 2000 -servers 100 -rho 10 -mu 0.05 \
//	     -utility step:10 -half-life 60 -drift 0.05 \
//	     -snapshot /var/lib/aged.snap -snapshot-every 30s
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"impatience/internal/serve"
)

func main() {
	var (
		addr          = flag.String("addr", ":8642", "listen address")
		items         = flag.Int("items", 2000, "catalog size")
		servers       = flag.Int("servers", 100, "number of servers |S|")
		rho           = flag.Int("rho", 10, "cache slots per server")
		mu            = flag.Float64("mu", 0.05, "pairwise contact rate")
		utilitySpec   = flag.String("utility", "step:10", "delay-utility spec (step:τ, exp:ν, power:α, neglog)")
		halfLife      = flag.Float64("half-life", 60, "demand-estimator EWMA half-life, seconds")
		drift         = flag.Float64("drift", 0.05, "normalized L1 demand drift that triggers a re-solve")
		snapshot      = flag.String("snapshot", "", "snapshot path for crash recovery (empty = no snapshots)")
		snapshotEvery = flag.Duration("snapshot-every", 0, "periodic snapshot interval (0 = only on POST /v1/snapshot and shutdown)")
	)
	flag.Parse()

	if err := run(serve.Config{
		Items:        *items,
		Servers:      *servers,
		Rho:          *rho,
		Mu:           *mu,
		Utility:      *utilitySpec,
		HalfLife:     *halfLife,
		Drift:        *drift,
		SnapshotPath: *snapshot,
	}, *addr, *snapshotEvery); err != nil {
		fmt.Fprintln(os.Stderr, "aged:", err)
		os.Exit(1)
	}
}

func run(cfg serve.Config, addr string, snapshotEvery time.Duration) error {
	s, err := serve.New(cfg)
	if err != nil {
		return err
	}
	if cfg.SnapshotPath != "" {
		switch err := s.Restore(); {
		case err == nil:
			fmt.Printf("aged: restored snapshot %s\n", cfg.SnapshotPath)
		case errors.Is(err, os.ErrNotExist):
			fmt.Printf("aged: no snapshot at %s, starting fresh\n", cfg.SnapshotPath)
		default:
			// A snapshot that exists but cannot be restored (corrupt file,
			// mismatched operating point) is a configuration error: silently
			// discarding folded demand state would be worse than stopping.
			return fmt.Errorf("restore %s: %w", cfg.SnapshotPath, err)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	httpSrv := &http.Server{Addr: addr, Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() {
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			serveErr <- err
		}
	}()
	fmt.Printf("aged: serving on %s (items=%d servers=%d rho=%d utility=%s)\n",
		addr, cfg.Items, cfg.Servers, cfg.Rho, cfg.Utility)

	if cfg.SnapshotPath != "" && snapshotEvery > 0 {
		go func() {
			tick := time.NewTicker(snapshotEvery)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					if _, err := s.Snapshot(); err != nil {
						fmt.Fprintln(os.Stderr, "aged: periodic snapshot:", err)
					}
				}
			}
		}()
	}

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return err
	}
	if cfg.SnapshotPath != "" {
		if _, err := s.Snapshot(); err != nil {
			return fmt.Errorf("final snapshot: %w", err)
		}
		fmt.Printf("aged: state saved to %s\n", cfg.SnapshotPath)
	}
	return nil
}
