package welfare

import (
	"fmt"
	"math"

	"impatience/internal/utility"
)

// MeanBurst returns E[ψ_unit(Y)] — the expected number of replicas an
// unscaled Property-2 reaction creates per fulfillment — for an item with
// x replicas: the query counter Y of a fulfilled request is geometric
// with success probability p = x/|S| (each met node caches the item with
// that probability), so the expectation is Σ_y ψ(y)·p(1−p)^{y−1}.
//
// This matters because ψ is applied to the *random* counter, not to its
// mean: for the convex reactions of waiting-cost utilities (ψ ∝ y^{1−α},
// α < 1) the burst expectation exceeds ψ(E[Y]) substantially, and its
// magnitude varies by orders of magnitude across utility families.
func MeanBurst(f utility.Function, mu float64, servers int, x float64) float64 {
	S := float64(servers)
	if x <= 0 || x > S {
		return math.NaN()
	}
	p := x / S
	if p >= 1 {
		return utility.Psi(f, mu, S, 1)
	}
	var sum float64
	q := 1.0 // (1-p)^{y-1}
	for y := 1; ; y++ {
		w := p * q
		sum += w * utility.Psi(f, mu, S, float64(y))
		q *= 1 - p
		if q < 1e-12 && float64(y) > 3/p {
			break
		}
		if y > 1_000_000 {
			break
		}
	}
	return sum
}

// ReactionScale returns the proportionality constant for the Property-2
// reaction such that, at the relaxed optimal allocation, the
// demand-weighted mean replication burst per fulfillment equals kappa
// replicas. The fixed point of QCR is invariant to this constant
// (Section 5.2), but the variance of the cache allocation around it is
// not: too large a scale churns the global cache faster than it mixes
// and the concave welfare pays for every fluctuation, while too small a
// scale slows convergence. Normalizing the burst decouples the choice
// from the utility family — the raw ψ magnitudes differ by orders of
// magnitude between, say, step and steep power utilities.
//
// kappa ≈ 0.15 works well at the paper's scale (50 nodes, ρ=5). The
// computation uses only design-time information (demand, impatience, µ,
// |S|) — exactly the inputs the paper already assumes when tuning ψ.
func (h Homogeneous) ReactionScale(rho int, kappa float64) (float64, error) {
	if kappa <= 0 {
		return 0, fmt.Errorf("welfare: kappa %g must be positive", kappa)
	}
	x, err := h.RelaxedOptimal(rho)
	if err != nil {
		return 0, err
	}
	var num, den float64
	for i, d := range h.Pop.Rates {
		if d <= 0 || x[i] <= 0 {
			continue
		}
		b := MeanBurst(h.utilityFor(i), h.Mu, h.Servers, x[i])
		if math.IsNaN(b) || math.IsInf(b, 0) {
			continue
		}
		num += d * b
		den += d
	}
	if den == 0 || num == 0 {
		return 0, fmt.Errorf("welfare: degenerate burst normalization")
	}
	return kappa * den / num, nil
}
