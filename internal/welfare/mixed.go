package welfare

import (
	"fmt"

	"impatience/internal/utility"
)

// Per-item delay-utilities. Section 3.2 allows each content item its own
// h_i (news flashes with a hard deadline next to software patches with a
// waiting cost); both evaluators accept an optional Utilities slice that
// overrides the shared Utility per item. All results of the paper
// (submodularity, concavity, greedy optimality, the balance condition)
// hold per item, so the solvers work unchanged.

// utilityFor returns item i's delay-utility.
func (h Homogeneous) utilityFor(i int) utility.Function {
	if i < len(h.Utilities) && h.Utilities[i] != nil {
		return h.Utilities[i]
	}
	return h.Utility
}

// utilityFor returns item i's delay-utility.
func (s Hetero) utilityFor(i int) utility.Function {
	if i < len(s.Utilities) && s.Utilities[i] != nil {
		return s.Utilities[i]
	}
	return s.Utility
}

// validateUtilities checks the optional per-item utility slice.
func validateUtilities(utilities []utility.Function, items int, pureP2P bool) error {
	if len(utilities) == 0 {
		return nil
	}
	if len(utilities) != items {
		return fmt.Errorf("welfare: %d per-item utilities for %d items", len(utilities), items)
	}
	if pureP2P {
		for i, f := range utilities {
			if f != nil && !utility.SupportsPureP2P(f) {
				return fmt.Errorf("welfare: item %d utility %s has unbounded h(0+); dedicated-node case only", i, f.Name())
			}
		}
	}
	return nil
}
