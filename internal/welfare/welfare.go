// Package welfare evaluates the social welfare U(x) of Section 3.5 — the
// aggregate expected delay-utility of all client demand under a given
// cache allocation — and computes optimal allocations:
//
//   - closed-form homogeneous evaluators (Eqs. 2–5, both contact models,
//     dedicated-node and pure-P2P populations);
//   - the general heterogeneous evaluator of Lemma 1, driven by a pairwise
//     contact-rate matrix;
//   - the homogeneous greedy of Theorem 2 (optimal, by concavity);
//   - the lazy submodular greedy of Theorem 1 + Nemhauser et al., a
//     (1−1/e)-approximation for heterogeneous systems;
//   - the relaxed (real-valued) optimum via water-filling on the balance
//     condition of Property 1.
package welfare

import (
	"container/heap"
	"fmt"
	"math"

	"impatience/internal/alloc"
	"impatience/internal/demand"
	"impatience/internal/numeric"
	"impatience/internal/trace"
	"impatience/internal/utility"
)

// Homogeneous describes a system with uniform pairwise contact rate µ and
// uniform item popularity across clients (π_{i,n} = 1/N), the setting of
// Section 4. In the pure-P2P case clients double as servers, enabling
// immediate fulfillment of a request for a locally cached item.
type Homogeneous struct {
	Utility utility.Function
	// Utilities, when non-empty, gives each item its own delay-utility
	// (Section 3.2); nil entries fall back to Utility.
	Utilities []utility.Function
	Pop       demand.Popularity
	Mu        float64 // pairwise contact rate
	Servers   int     // |S|
	Clients   int     // |C| = N; used by the pure-P2P correction factor
	PureP2P   bool    // C = S (true) or C ∩ S = ∅ (false)
}

// Validate reports structural errors.
func (h Homogeneous) Validate() error {
	switch {
	case h.Utility == nil && len(h.Utilities) == 0:
		return fmt.Errorf("welfare: nil utility")
	case h.Mu <= 0:
		return fmt.Errorf("welfare: µ=%g", h.Mu)
	case h.Servers <= 0:
		return fmt.Errorf("welfare: %d servers", h.Servers)
	case h.PureP2P && h.Clients != h.Servers:
		return fmt.Errorf("welfare: pure P2P requires |C|=|S| (got %d,%d)", h.Clients, h.Servers)
	case h.PureP2P && h.Utility != nil && !utility.SupportsPureP2P(h.Utility):
		return fmt.Errorf("welfare: %s has unbounded h(0+); dedicated-node case only", h.Utility.Name())
	case !h.PureP2P && h.Clients <= 0:
		return fmt.Errorf("welfare: %d clients", h.Clients)
	}
	return validateUtilities(h.Utilities, h.Pop.Items(), h.PureP2P)
}

// itemGain returns the expected gain of one request for item i with x
// replicas (real-valued), under the continuous-time contact model:
// Eq. (3) per-item term for dedicated nodes, Eq. (5) for pure P2P.
func (h Homogeneous) itemGain(i int, x float64) float64 {
	f := h.utilityFor(i)
	g := f.ExpectedGain(h.Mu * x)
	if !h.PureP2P {
		return g
	}
	frac := x / float64(h.Clients)
	if frac > 1 {
		frac = 1
	}
	return frac*f.H0() + (1-frac)*g
}

// Welfare evaluates U(x) for a real-valued replica vector under the
// continuous-time model. Items with zero demand contribute nothing even
// if their gain would be −∞ (no requests are ever made for them).
func (h Homogeneous) Welfare(x []float64) float64 {
	var u float64
	for i, d := range h.Pop.Rates {
		if d == 0 {
			continue
		}
		u += d * h.itemGain(i, x[i])
	}
	return u
}

// WelfareCounts evaluates U(x) for an integer allocation.
func (h Homogeneous) WelfareCounts(c alloc.Counts) float64 {
	x := make([]float64, len(c))
	for i, v := range c {
		x[i] = float64(v)
	}
	return h.Welfare(x)
}

// WelfareDiscrete evaluates the discrete-time social welfare of Eq. (2)
// (dedicated) or Eq. (4) (pure P2P) for slot length delta: the per-slot
// miss probability of an item with x replicas is q = (1−µδ)^x.
func (h Homogeneous) WelfareDiscrete(c alloc.Counts, delta float64) float64 {
	var u float64
	for i, d := range h.Pop.Rates {
		if d == 0 {
			continue
		}
		f := h.utilityFor(i)
		q := math.Pow(1-h.Mu*delta, float64(c[i]))
		g := utility.DiscreteExpectedGain(f, q, delta)
		if h.PureP2P {
			frac := float64(c[i]) / float64(h.Clients)
			if frac > 1 {
				frac = 1
			}
			// A request from a holder is fulfilled immediately (before the
			// first slot elapses): gain h(0+) ~ here h evaluated at 0⁺,
			// approximated by H0 as in the continuous model.
			g = frac*f.H0() + (1-frac)*g
		}
		u += d * g
	}
	return u
}

// GreedyOptimal computes the optimal integer allocation of Theorem 2 for
// per-server capacity rho: repeatedly grant the next cache slot to the
// item with the largest marginal welfare gain. Concavity of the per-item
// gain makes the greedy exact. The returned allocation uses the full
// capacity unless every item already has |S| replicas.
func (h Homogeneous) GreedyOptimal(rho int) (alloc.Counts, error) {
	if err := h.Validate(); err != nil {
		return nil, err
	}
	items := h.Pop.Items()
	c := make(alloc.Counts, items)
	budget := alloc.Capacity(h.Servers, rho)
	pq := &marginalHeap{}
	for i := 0; i < items; i++ {
		if h.Pop.Rates[i] <= 0 {
			continue
		}
		pq.push(marginal{item: i, gain: h.marginalGain(i, 0)})
	}
	for placed := 0; placed < budget && pq.Len() > 0; placed++ {
		m := pq.pop()
		i := m.item
		c[i]++
		if c[i] < h.Servers {
			pq.push(marginal{item: i, gain: h.marginalGain(i, c[i])})
		}
	}
	// Spill leftover capacity (all demanded items saturated) onto
	// zero-demand items; it cannot hurt.
	placed := c.Total()
	for i := 0; i < items && placed < budget; i++ {
		for c[i] < h.Servers && placed < budget {
			c[i]++
			placed++
		}
	}
	return c, nil
}

// marginalGain is d_i·(G(k+1) − G(k)): the welfare increase from the
// (k+1)-th replica of item i.
func (h Homogeneous) marginalGain(i, k int) float64 {
	lo := h.itemGain(i, float64(k))
	hi := h.itemGain(i, float64(k+1))
	d := h.Pop.Rates[i]
	gain := d * (hi - lo)
	if math.IsNaN(gain) {
		return 0
	}
	// G(0) may be −∞ (cost-type utilities): the first replica has infinite
	// marginal value; order those by demand.
	if math.IsInf(gain, 1) {
		return math.MaxFloat64 * math.Min(1, d)
	}
	return gain
}

// RelaxedOptimal solves the continuous relaxation of the welfare
// maximization (Theorem 2) by water-filling on Property 1's balance
// condition d_i·ϕ(x_i) = λ, using the dedicated-node transform ϕ. The
// budget is the full capacity ρ·|S|; per-item caps are |S|. For large
// systems this tracks the integer optimum closely (Section 4.2).
func (h Homogeneous) RelaxedOptimal(rho int) ([]float64, error) {
	if err := h.Validate(); err != nil {
		return nil, err
	}
	p := numeric.WaterFillProblem{
		Weights: h.Pop.Rates,
		Caps:    capsFor(h.Pop.Items(), float64(h.Servers)),
		Budget:  float64(alloc.Capacity(h.Servers, rho)),
	}
	if len(h.Utilities) > 0 {
		p.DerivFor = func(i int, x float64) float64 { return h.utilityFor(i).Phi(h.Mu, x) }
	} else {
		p.Deriv = func(x float64) float64 { return h.Utility.Phi(h.Mu, x) }
	}
	return numeric.WaterFill(p)
}

func capsFor(items int, cap float64) []float64 {
	caps := make([]float64, items)
	for i := range caps {
		caps[i] = cap
	}
	return caps
}

// marginal/heap: a max-heap of per-item marginal gains.
type marginal struct {
	item int
	gain float64
}

type marginalHeap struct{ items []marginal }

func (h marginalHeap) Len() int           { return len(h.items) }
func (h marginalHeap) Less(a, b int) bool { return h.items[a].gain > h.items[b].gain }
func (h marginalHeap) Swap(a, b int)      { h.items[a], h.items[b] = h.items[b], h.items[a] }
func (h *marginalHeap) Push(x any)        { h.items = append(h.items, x.(marginal)) }
func (h *marginalHeap) Pop() any {
	old := h.items
	n := len(old)
	v := old[n-1]
	h.items = old[:n-1]
	return v
}
func (h *marginalHeap) push(m marginal) { heap.Push(h, m) }
func (h *marginalHeap) pop() marginal   { return heap.Pop(h).(marginal) }

// ---------------------------------------------------------------------------
// Heterogeneous systems (Lemma 1).

// Hetero describes a system with arbitrary pairwise contact rates. Nodes
// 0..Rates.Nodes-1 are partitioned (possibly overlappingly) into clients
// and servers; the popularity profile maps items to clients.
type Hetero struct {
	Utility utility.Function
	// Utilities, when non-empty, gives each item its own delay-utility
	// (Section 3.2); nil entries fall back to Utility.
	Utilities []utility.Function
	Pop       demand.Popularity
	Profile   demand.Profile // rows sum to 1 over Clients indices
	Rates     *trace.RateMatrix
	Clients   []int // node ids that issue requests; Profile columns follow this order
	Servers   []int // node ids that cache content
}

// Validate reports structural errors.
func (s Hetero) Validate() error {
	switch {
	case s.Utility == nil && len(s.Utilities) == 0:
		return fmt.Errorf("welfare: nil utility")
	case s.Rates == nil:
		return fmt.Errorf("welfare: nil rate matrix")
	case len(s.Clients) == 0 || len(s.Servers) == 0:
		return fmt.Errorf("welfare: empty client or server set")
	case len(s.Profile.P) != s.Pop.Items():
		return fmt.Errorf("welfare: profile rows %d != items %d", len(s.Profile.P), s.Pop.Items())
	}
	for _, row := range s.Profile.P {
		if len(row) != len(s.Clients) {
			return fmt.Errorf("welfare: profile row width %d != clients %d", len(row), len(s.Clients))
		}
	}
	for _, n := range append(append([]int(nil), s.Clients...), s.Servers...) {
		if n < 0 || n >= s.Rates.Nodes {
			return fmt.Errorf("welfare: node %d outside rate matrix (%d nodes)", n, s.Rates.Nodes)
		}
	}
	return validateUtilities(s.Utilities, s.Pop.Items(), false)
}

// serverIndex returns a map from node id to index in Servers.
func (s Hetero) serverIndex() map[int]int {
	idx := make(map[int]int, len(s.Servers))
	for k, m := range s.Servers {
		idx[m] = k
	}
	return idx
}

// Welfare evaluates Lemma 1's continuous-time expression for a concrete
// placement (columns of p follow the order of s.Servers):
//
//	U(x) = Σ_i d_i Σ_n π_{i,n} [ x_{i,n}·h(0⁺) + (1−x_{i,n})·E[h(Exp(Λ_{i,n}))] ]
//
// with Λ_{i,n} = Σ_m x_{i,m}·µ_{m,n}.
func (s Hetero) Welfare(p *alloc.Placement) float64 {
	srvIdx := s.serverIndex()
	var u float64
	for i, d := range s.Pop.Rates {
		if d == 0 {
			continue
		}
		for cn, pi := range s.Profile.P[i] {
			if pi == 0 {
				continue
			}
			n := s.Clients[cn]
			u += d * pi * s.clientGain(p, srvIdx, i, n)
		}
	}
	return u
}

// clientGain is U_{i,n} for client node n.
func (s Hetero) clientGain(p *alloc.Placement, srvIdx map[int]int, item, n int) float64 {
	f := s.utilityFor(item)
	if k, isServer := srvIdx[n]; isServer && p.Has(item, k) {
		return f.H0()
	}
	var lambda float64
	for k, m := range s.Servers {
		if p.Has(item, k) {
			lambda += s.Rates.At(m, n)
		}
	}
	return f.ExpectedGain(lambda)
}

// GreedySubmodular computes a (1−1/e)-approximate optimal placement by
// lazy greedy over (item, server) pairs: submodularity of U (Theorem 1)
// guarantees stale upper bounds in the priority queue only ever
// overestimate, so re-evaluating the top candidate until it stays on top
// yields exactly the greedy solution at a fraction of the evaluations.
func (s Hetero) GreedySubmodular(rho int) (*alloc.Placement, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	items := s.Pop.Items()
	S := len(s.Servers)
	p := alloc.NewPlacement(items, S, rho)
	srvIdx := s.serverIndex()

	// Λ[i][cn] per (item, client); updated incrementally on placement.
	lambda := make([][]float64, items)
	for i := range lambda {
		lambda[i] = make([]float64, len(s.Clients))
	}

	marginalOf := func(i, k int) float64 {
		m := s.Servers[k]
		f := s.utilityFor(i)
		var gain float64
		d := s.Pop.Rates[i]
		for cn, pi := range s.Profile.P[i] {
			if pi == 0 {
				continue
			}
			n := s.Clients[cn]
			if ck, isServer := srvIdx[n]; isServer && p.Has(i, ck) {
				continue // already served locally, no change
			}
			cur := lambda[i][cn]
			if n == m {
				// This client becomes a holder: gain jumps to h(0⁺).
				gain += d * pi * (f.H0() - f.ExpectedGain(cur))
				continue
			}
			r := s.Rates.At(m, n)
			if r == 0 {
				continue
			}
			gain += d * pi * (f.ExpectedGain(cur+r) - f.ExpectedGain(cur))
		}
		if math.IsNaN(gain) {
			return 0
		}
		if math.IsInf(gain, 1) {
			return math.MaxFloat64 * math.Min(1, d)
		}
		return gain
	}

	pq := &pairHeap{}
	for i := 0; i < items; i++ {
		if s.Pop.Rates[i] <= 0 {
			continue
		}
		for k := 0; k < S; k++ {
			pq.push(pairGain{item: i, server: k, gain: marginalOf(i, k), epoch: 0})
		}
	}
	budget := alloc.Capacity(S, rho)
	epoch := 0
	for placed := 0; placed < budget && pq.Len() > 0; {
		top := pq.pop()
		if p.Has(top.item, top.server) || p.Load(top.server) >= rho {
			continue
		}
		if top.epoch != epoch {
			top.gain = marginalOf(top.item, top.server)
			top.epoch = epoch
			if pq.Len() > 0 && top.gain < pq.peek().gain {
				pq.push(top)
				continue
			}
		}
		if err := p.Set(top.item, top.server, true); err != nil {
			return nil, err
		}
		m := s.Servers[top.server]
		for cn := range s.Clients {
			lambda[top.item][cn] += s.Rates.At(m, s.Clients[cn])
		}
		placed++
		epoch++
	}
	return p, nil
}

// pairGain is a lazily evaluated marginal for placing item on server.
type pairGain struct {
	item, server int
	gain         float64
	epoch        int
}

type pairHeap struct{ items []pairGain }

func (h pairHeap) Len() int           { return len(h.items) }
func (h pairHeap) Less(a, b int) bool { return h.items[a].gain > h.items[b].gain }
func (h pairHeap) Swap(a, b int)      { h.items[a], h.items[b] = h.items[b], h.items[a] }
func (h *pairHeap) Push(x any)        { h.items = append(h.items, x.(pairGain)) }
func (h *pairHeap) Pop() any {
	old := h.items
	n := len(old)
	v := old[n-1]
	h.items = old[:n-1]
	return v
}
func (h *pairHeap) push(g pairGain) { heap.Push(h, g) }
func (h *pairHeap) pop() pairGain   { return heap.Pop(h).(pairGain) }
func (h *pairHeap) peek() pairGain  { return h.items[0] }
