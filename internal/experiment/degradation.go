package experiment

import (
	"fmt"

	"impatience/internal/adversary"
	"impatience/internal/faults"
	"impatience/internal/parallel"
	"impatience/internal/plot"
	"impatience/internal/sim"
	"impatience/internal/stats"
	"impatience/internal/trace"
	"impatience/internal/utility"
)

// FaultPlan bundles a fault-injection configuration with the hardening
// knobs the QCR policy uses to survive it, plus the adversarial-workload
// configuration of the robustness experiments. A nil plan (or nil Faults
// and Adversary) reproduces the idealized Section 6.1 runs bit for bit.
type FaultPlan struct {
	Faults *faults.Config
	// Adversary enables the misbehavior-and-drift layer (dishonest
	// counter inflation, free-riders, scheduled popularity churn) for
	// every scheme in the plan's trials.
	Adversary *adversary.Config
	// MandateTTL and MaxAttempts are applied to QCR-family policies only;
	// static allocations have no mandates to harden.
	MandateTTL  float64
	MaxAttempts int
}

// Hardening wraps a fault config with the scenario's default hardening
// knobs: mandates expire after roughly four mean pairwise inter-contact
// times (plenty of meetings to execute or route them; stale ones from
// crashed holders are garbage by then), and a failed content transfer is
// retried at up to five later meetings before the mandate is abandoned.
func (sc Scenario) Hardening(fc *faults.Config) *FaultPlan {
	return &FaultPlan{Faults: fc, MandateTTL: 4 / sc.Mu, MaxAttempts: 5}
}

// RunSchemeFaults is RunScheme with fault injection: the plan's fault
// config is handed to the simulator and its hardening knobs to QCR-family
// policies. A nil plan is exactly RunScheme.
func (sc Scenario) RunSchemeFaults(scheme string, u utility.Function, tr *trace.Trace, rates *trace.RateMatrix, mu float64, trial uint64, series bool, plan *FaultPlan) (*sim.Result, error) {
	return sc.runScheme(scheme, u, tr, rates, mu, trial, series, plan)
}

// degradationSweep runs QCR vs the static OPT/UNI competitors at each
// fault intensity x, with build(x) describing the faults to inject, and
// returns mean AvgUtilityRate per scheme (QCR additionally with its
// 5%/95% band). Every scheme within a trial sees the identical fault
// sequence: the injector's stream depends only on its config.
func (sc Scenario) degradationSweep(u utility.Function, xs []float64, build func(x float64) faults.Config, title, xlabel string) (*plot.Table, error) {
	gen := sc.HomogeneousSources()
	schemes := []string{SchemeQCR, SchemeOPT, SchemeUNI}
	outs, err := parallel.RunTrials(sc.Trials, sc.Workers, sc.Seed, func(trial int, seed uint64) ([][]float64, error) {
		src, err := gen(seed)
		if err != nil {
			return nil, err
		}
		// One rates pass, then one lockstep batch pass per fault
		// intensity over a reopened view of the same contact sequence.
		ro, err := asReopenable(src)
		if err != nil {
			return nil, err
		}
		rates, err := trace.EmpiricalRatesFrom(ro)
		if err != nil {
			return nil, err
		}
		mu := rates.Mean()
		rows := make([][]float64, len(schemes)) // scheme → per-x sample
		for si := range rows {
			rows[si] = make([]float64, len(xs))
		}
		for xi, x := range xs {
			fc := build(x)
			fc.Seed = sc.Seed*69069 + uint64(trial)*127 + uint64(xi)
			plan := sc.Hardening(&fc)
			pass, err := ro.Reopen()
			if err != nil {
				return nil, err
			}
			results, err := sc.runBatchOn(schemes, u, rates, mu, uint64(trial), false, plan, pass)
			if err != nil {
				return nil, fmt.Errorf("experiment: at %s=%g: %w", xlabel, x, err)
			}
			for si := range schemes {
				rows[si][xi] = results[si].AvgUtilityRate
			}
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	per := make(map[string][][]float64, len(schemes)) // scheme → per-x trial samples
	for _, s := range schemes {
		per[s] = make([][]float64, len(xs))
	}
	for _, rows := range outs {
		for si, s := range schemes {
			for xi := range xs {
				per[s][xi] = append(per[s][xi], rows[si][xi])
			}
		}
	}
	table := &plot.Table{Title: title, XLabel: xlabel}
	table.X = append(table.X, xs...)
	for _, s := range schemes {
		mean := make([]float64, len(xs))
		for xi := range xs {
			mean[xi] = stats.Summarize(per[s][xi]).Mean
		}
		if err := table.AddColumn(s, mean); err != nil {
			return nil, err
		}
	}
	lo := make([]float64, len(xs))
	hi := make([]float64, len(xs))
	for xi := range xs {
		sum := stats.Summarize(per[SchemeQCR][xi])
		lo[xi], hi[xi] = sum.P5, sum.P95
	}
	table.AddColumn("QCR p5", lo)
	table.AddColumn("QCR p95", hi)
	return table, nil
}

// DegradationLoss sweeps the truncated-meeting probability p_loss from 0
// to 0.5: every meeting keeps its metadata exchange but loses the content
// payload with probability p_loss. The hardened QCR retries failed
// transfers at later meetings, so its utility should fall continuously —
// no collapse — alongside the static competitors (whose fulfillments are
// truncated just the same).
func DegradationLoss(sc Scenario, u utility.Function, ploss []float64) (*plot.Table, error) {
	if len(ploss) == 0 {
		ploss = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5}
	}
	return sc.degradationSweep(u, ploss,
		func(p float64) faults.Config { return faults.Config{PLoss: p} },
		"Degradation: utility rate vs meeting-truncation probability",
		"p_loss")
}

// DegradationChurn sweeps the node crash rate (crashes per node per
// minute, exponential up-lifetimes, fixed mean downtime): crashes wipe
// caches, sticky replicas and pending mandates. QCR re-seeds sticky
// replicas and regrows the allocation; the static allocations lose
// replicas permanently because nothing ever rewrites them.
func DegradationChurn(sc Scenario, u utility.Function, churn []float64) (*plot.Table, error) {
	if len(churn) == 0 {
		churn = []float64{0, 0.0005, 0.001, 0.002, 0.005}
	}
	down := sc.Duration / 100
	return sc.degradationSweep(u, churn,
		func(c float64) faults.Config { return faults.Config{ChurnRate: c, MeanDowntime: down} },
		"Degradation: utility rate vs node churn rate",
		"crashes per node-minute")
}

// MassFailureRecovery is the headline robustness plot: at 40% of the run
// a fraction of all nodes crashes simultaneously, wiping their caches,
// and rejoins empty shortly after. The table holds the binned utility
// rate over time (mean across trials) for QCR and the static OPT: QCR
// re-converges to its pre-crash welfare, OPT cannot — its lost replicas
// are never rewritten.
func MassFailureRecovery(sc Scenario, u utility.Function, frac float64) (*plot.Table, error) {
	if frac <= 0 || frac > 1 {
		return nil, fmt.Errorf("experiment: mass-crash fraction %g outside (0,1]", frac)
	}
	gen := sc.HomogeneousSources()
	schemes := []string{SchemeQCR, SchemeOPT}
	const bins = 100
	crashAt := 0.4 * sc.Duration
	outs, err := parallel.RunTrials(sc.Trials, sc.Workers, sc.Seed, func(trial int, seed uint64) ([][]float64, error) {
		src, err := gen(seed)
		if err != nil {
			return nil, err
		}
		fc := faults.Config{
			MassCrashTime: crashAt,
			MassCrashFrac: frac,
			MassDowntime:  sc.Duration / 20,
			Seed:          sc.Seed*69069 + uint64(trial)*127,
		}
		plan := sc.Hardening(&fc)
		results, err := sc.RunSchemesBatch(schemes, u, src, 0, uint64(trial), true, plan)
		if err != nil {
			return nil, err
		}
		rows := make([][]float64, len(schemes))
		for si, scheme := range schemes {
			res := results[si]
			if len(res.Bins) != bins {
				return nil, fmt.Errorf("experiment: %s: %d bins, want %d", scheme, len(res.Bins), bins)
			}
			rows[si] = make([]float64, bins)
			for k, b := range res.Bins {
				if w := b.T1 - b.T0; w > 0 {
					rows[si][k] = b.Gain / w
				}
			}
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	acc := make(map[string][]float64, len(schemes))
	for _, s := range schemes {
		acc[s] = make([]float64, bins)
	}
	for _, rows := range outs {
		for si, s := range schemes {
			for k := range rows[si] {
				acc[s][k] += rows[si][k]
			}
		}
	}
	table := &plot.Table{
		Title:  fmt.Sprintf("Mass failure at t=%.0f (%.0f%% of nodes): recovery of utility rate", crashAt, frac*100),
		XLabel: "time (min)",
	}
	for k := 0; k < bins; k++ {
		table.X = append(table.X, (float64(k)+0.5)*sc.Duration/bins)
	}
	for _, s := range schemes {
		y := make([]float64, bins)
		for k := range y {
			y[k] = acc[s][k] / float64(sc.Trials)
		}
		if err := table.AddColumn(s, y); err != nil {
			return nil, err
		}
	}
	return table, nil
}
