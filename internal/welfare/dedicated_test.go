package welfare

import (
	"math"
	"testing"

	"impatience/internal/alloc"
	"impatience/internal/demand"
	"impatience/internal/trace"
	"impatience/internal/utility"
)

// Dedicated-node case: servers and clients are disjoint (C ∩ S = ∅),
// which is where the unbounded-at-zero utilities (inverse power, neglog)
// are admissible.

func dedicated(f utility.Function, items, servers, clients int, mu float64) Hetero {
	srv := make([]int, servers)
	for i := range srv {
		srv[i] = i
	}
	cli := make([]int, clients)
	for i := range cli {
		cli[i] = servers + i
	}
	return Hetero{
		Utility: f,
		Pop:     demand.Pareto(items, 1, 1),
		Profile: demand.UniformProfile(items, clients),
		Rates:   trace.UniformRates(servers+clients, mu),
		Clients: cli,
		Servers: srv,
	}
}

// The dedicated-node Lemma-1 evaluation must match the Eq. 3 closed form.
func TestDedicatedMatchesEq3(t *testing.T) {
	const (
		items   = 5
		servers = 6
		clients = 4
		mu      = 0.08
	)
	for _, f := range []utility.Function{
		utility.Step{Tau: 4},
		utility.NegLog{},          // unbounded h(0+): dedicated only
		utility.Power{Alpha: 1.5}, // same
	} {
		s := dedicated(f, items, servers, clients, mu)
		counts := alloc.Counts{3, 2, 1, 4, 1}
		p, err := alloc.Place(counts, servers, 2)
		if err != nil {
			t.Fatalf("Place: %v", err)
		}
		got := s.Welfare(p)
		var want float64
		for i, d := range s.Pop.Rates {
			want += d * f.ExpectedGain(mu*float64(counts[i]))
		}
		if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
			t.Errorf("%s: hetero=%g eq3=%g", f.Name(), got, want)
		}
	}
}

// Greedy submodular in the dedicated case with an unbounded utility must
// still produce a feasible allocation that covers every demanded item
// when capacity allows (neglog's first-copy marginal is infinite).
func TestDedicatedGreedyNegLog(t *testing.T) {
	s := dedicated(utility.NegLog{}, 4, 6, 4, 0.05)
	p, err := s.GreedySubmodular(2) // capacity 12 ≥ 4 items
	if err != nil {
		t.Fatalf("GreedySubmodular: %v", err)
	}
	counts := p.Counts()
	for i, c := range counts {
		if c == 0 {
			t.Errorf("item %d uncovered under neglog", i)
		}
	}
	if counts.Total() != 12 {
		t.Errorf("capacity not exhausted: %v", counts)
	}
	if u := s.Welfare(p); math.IsInf(u, -1) || math.IsNaN(u) {
		t.Errorf("welfare %g", u)
	}
}

// In the dedicated case a client never fulfills immediately, so welfare
// is independent of *which* servers hold the copies under uniform rates.
func TestDedicatedPlacementIrrelevantUnderUniformRates(t *testing.T) {
	s := dedicated(utility.Exponential{Nu: 0.3}, 3, 5, 3, 0.06)
	counts := alloc.Counts{2, 2, 1}
	p1, err := alloc.Place(counts, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	// A different concrete placement with the same counts.
	p2 := alloc.NewPlacement(3, 5, 1)
	p2.Set(0, 4, true)
	p2.Set(0, 3, true)
	p2.Set(1, 0, true)
	p2.Set(1, 1, true)
	p2.Set(2, 2, true)
	u1, u2 := s.Welfare(p1), s.Welfare(p2)
	if math.Abs(u1-u2) > 1e-12*math.Max(1, math.Abs(u1)) {
		t.Errorf("welfare depends on placement under uniform rates: %g vs %g", u1, u2)
	}
}

// Pure P2P vs dedicated comparison (§4.2): as N grows with x fixed, the
// pure-P2P correction (1 − x/N) approaches 1 and the two cases agree.
func TestPureP2PApproachesDedicated(t *testing.T) {
	f := utility.Step{Tau: 10}
	pop := demand.Pareto(5, 1, 1)
	x := []float64{4, 3, 2, 2, 1}
	var prevGap float64 = math.Inf(1)
	for _, n := range []int{20, 100, 1000} {
		hd := Homogeneous{Utility: f, Pop: pop, Mu: 0.05, Servers: n, Clients: n}
		hp := hd
		hp.PureP2P = true
		gap := math.Abs(hd.Welfare(x) - hp.Welfare(x))
		if gap > prevGap+1e-12 {
			t.Errorf("gap grew at N=%d: %g > %g", n, gap, prevGap)
		}
		prevGap = gap
	}
	if prevGap > 1e-3 {
		t.Errorf("residual dedicated-vs-pure gap %g at N=1000", prevGap)
	}
}

// Non-uniform profile: demand concentrated at one client weights that
// client's contact rates.
func TestHeteroNonUniformProfile(t *testing.T) {
	// 2 servers (0,1), 2 clients (2,3). Item 0's demand comes only from
	// client 2, which can only meet server 0.
	rates := trace.NewRateMatrix(4)
	rates.Set(0, 2, 0.5) // client 2 ↔ server 0
	rates.Set(1, 3, 0.5) // client 3 ↔ server 1
	s := Hetero{
		Utility: utility.Step{Tau: 3},
		Pop:     demand.Popularity{Rates: []float64{1}},
		Profile: demand.Profile{P: [][]float64{{1, 0}}}, // all demand at client 2
		Rates:   rates,
		Clients: []int{2, 3},
		Servers: []int{0, 1},
	}
	// A copy on server 1 is worthless; on server 0 it is worth a lot.
	p0 := alloc.NewPlacement(1, 2, 1)
	p0.Set(0, 0, true)
	p1 := alloc.NewPlacement(1, 2, 1)
	p1.Set(0, 1, true)
	u0, u1 := s.Welfare(p0), s.Welfare(p1)
	if !(u0 > u1) {
		t.Errorf("placement at the reachable server not preferred: %g vs %g", u0, u1)
	}
	if u1 != 0 {
		t.Errorf("unreachable copy earned %g, want 0", u1)
	}
	// Greedy must discover this.
	g, err := s.GreedySubmodular(1)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Has(0, 0) {
		t.Error("greedy failed to place the item at the only reachable server")
	}
}
