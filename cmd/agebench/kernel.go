package main

import (
	"fmt"
	"runtime"
	"time"

	"impatience/internal/core"
	"impatience/internal/demand"
	"impatience/internal/rates"
	"impatience/internal/sim"
	"impatience/internal/trace"
	"impatience/internal/utility"
)

// The kernel benchmark (-kernel-only) measures the devirtualized contact
// kernel in isolation: the same community workload runs twice on the
// same binary — once with Config.ReferenceKernel replaying the
// pre-optimization path (Next-per-contact streaming, interface utility
// dispatch, hooks always invoked) and once on the fast path (batched
// streaming, monomorphic utility kernels, dispatch-free meeting loop) —
// and BENCH_kernel.json records ns/contact before and after at
// N ∈ {10³, 10⁴, 10⁵}.
//
// Two claims, two kinds of gate. The portable claim is bit-identity:
// every cell hard-fails unless the fast and reference runs produce the
// same Result digest. The measured claim is the speedup: the event-path
// (Static) rows are gated at kernelMinSpeedup in full mode; short mode
// records the ratios without enforcing them, because CI smoke runners
// are too noisy for a wall-clock gate. The per-rung event rows step a
// pre-materialized trace, so they time the simulation kernel alone; the
// streamed row times generation + simulation end-to-end through the
// bulk seam and is reported unguarded as provenance.

// kernelMinSpeedup is the full-mode acceptance floor for the Static
// (event-path) rows: fast ns/contact must beat reference by ≥ 1.3×.
const kernelMinSpeedup = 1.3

// kernelRungSpec sizes one rung: community shape plus a duration chosen
// so every rung processes a comparable contact volume (contact volume
// per simulated minute is perNodeRate·N/2).
type kernelRungSpec struct {
	nodes       int
	communities int
	duration    float64
}

func kernelLadder(short bool) []kernelRungSpec {
	// Durations are sized so the contact loop dwarfs the per-run O(N·items)
	// state setup that Run pays in both modes (~10⁶–2·10⁶ contacts per
	// full rung): with too few contacts per run the common setup cost
	// dilutes the kernel speedup into noise. Short mode trades margin for
	// wall time, which is one reason its gate is advisory.
	if short {
		return []kernelRungSpec{
			{nodes: 1_000, communities: 8, duration: 120},
			{nodes: 10_000, communities: 32, duration: 24},
			{nodes: 100_000, communities: 32, duration: 8},
		}
	}
	return []kernelRungSpec{
		{nodes: 1_000, communities: 8, duration: 800},
		{nodes: 10_000, communities: 32, duration: 80},
		{nodes: 100_000, communities: 32, duration: 16},
	}
}

type kernelCell struct {
	Policy            string  `json:"policy"`
	RefNsPerContact   float64 `json:"ref_ns_per_contact"`
	FastNsPerContact  float64 `json:"fast_ns_per_contact"`
	Speedup           float64 `json:"speedup"`
	Digest            string  `json:"digest"`
	DigestMatch       bool    `json:"digest_match"`
	GatedEventPath    bool    `json:"gated_event_path"`
	Fulfillments      int     `json:"fulfillments"`
	ContactsSimulated int     `json:"contacts_simulated"`
}

type kernelRungReport struct {
	Nodes       int          `json:"nodes"`
	Communities int          `json:"communities"`
	Duration    float64      `json:"duration_min"`
	Contacts    int          `json:"contacts"`
	Event       []kernelCell `json:"event_path"`
	Streamed    kernelCell   `json:"streamed_end_to_end"`
}

type kernelReport struct {
	Benchmark string `json:"benchmark"`
	provenance
	SingleCore  bool               `json:"single_core"`
	Note        string             `json:"note"`
	MinSpeedup  float64            `json:"min_speedup_gate"`
	GateApplied bool               `json:"gate_applied"`
	Items       int                `json:"items"`
	Rho         int                `json:"rho"`
	Rungs       []kernelRungReport `json:"rungs"`
}

// kernelModel mirrors the scale ladder's community split: the per-node
// contact budget at paper defaults, 70% intra- / 30% cross-community.
func kernelModel(spec kernelRungSpec) (*rates.Model, error) {
	perComm := spec.nodes / spec.communities
	return rates.NewCommunity(rates.CommunityConfig{
		Nodes:       spec.nodes,
		Communities: spec.communities,
		In:          0.7 * perNodeRate / float64(perComm-1),
		Out:         0.3 * perNodeRate / float64(spec.nodes-perComm),
	})
}

const (
	kernelItems = 4
	kernelRho   = 2
	kernelSeed  = 41
)

// kernelConfig assembles one run. The policy is built fresh per run
// (QCR is stateful); reference selects the pre-optimization path.
func kernelConfig(policy string, reference bool) sim.Config {
	// One request per node-minute against 2.45 contacts per node-minute:
	// enough demand that fulfillment dispatch matters, lean enough that
	// the (mode-invariant) arrival bookkeeping does not drown the
	// per-contact savings at cache-hostile N.
	cfg := sim.Config{
		Rho:             kernelRho,
		Utility:         utility.Step{Tau: 10},
		Pop:             demand.Pareto(kernelItems, 1, 1),
		Seed:            kernelSeed,
		ReferenceKernel: reference,
	}
	switch policy {
	case "qcr":
		cfg.Policy = &core.QCR{Reaction: core.PathReplication(0.5), Seed: 7}
	default:
		cfg.Policy = core.Static{Label: "uni"}
	}
	return cfg
}

// timeKernelRun executes one run and returns (wall ns, digest, contacts
// stepped, fulfillments). Exactly one of tr / src drives it.
func timeKernelRun(cfg sim.Config, tr *trace.Trace, src trace.Source) (int64, uint64, int, int, error) {
	cfg.Trace, cfg.Contacts = tr, src
	// Collect before timing: earlier rungs' dead traces would otherwise be
	// swept inside whichever timed run trips the next GC cycle, and the
	// before/after comparison would inherit that accident of ordering.
	runtime.GC()
	start := time.Now()
	res, err := sim.Run(cfg)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	return time.Since(start).Nanoseconds(), res.Digest(), res.Meetings, res.Fulfillments, nil
}

// materialize drains the rung's structured source into a trace so the
// event-path rows time the simulation kernel with generation excluded.
func materialize(m *rates.Model, spec kernelRungSpec) (*trace.Trace, error) {
	src, err := rates.NewSharded(m, spec.duration, kernelSeed, 0)
	if err != nil {
		return nil, err
	}
	tr := &trace.Trace{Nodes: spec.nodes, Duration: spec.duration}
	buf := make([]trace.Contact, 4096)
	for {
		n := src.NextBatch(buf)
		if n == 0 {
			break
		}
		tr.Contacts = append(tr.Contacts, buf[:n]...)
	}
	return tr, nil
}

func runKernel(short bool, out string) error {
	report := kernelReport{
		Benchmark:   "Kernel/DevirtualizedContactLoop",
		provenance:  stamp(short),
		SingleCore:  runtime.GOMAXPROCS(0) == 1,
		MinSpeedup:  kernelMinSpeedup,
		GateApplied: !short,
		Items:       kernelItems,
		Rho:         kernelRho,
	}
	if short {
		report.Note = "short mode: speedups recorded but not gated (CI smoke runners are too noisy " +
			"for a wall-clock gate); digest equality is enforced in every mode"
	}
	reps := 3
	if short {
		reps = 2
	}
	for _, spec := range kernelLadder(short) {
		rung, err := runKernelRung(spec, reps, !short)
		if err != nil {
			return fmt.Errorf("N=%d: %w", spec.nodes, err)
		}
		report.Rungs = append(report.Rungs, *rung)
	}
	return writeJSON(out, report)
}

// measureCell times reference and fast runs of one policy, alternating
// modes and keeping the minimum wall time of each across reps — the
// standard defense against scheduler noise for single-digit-second
// cells. run must behave identically call to call.
func measureCell(policy string, reps int, run func(cfg sim.Config) (int64, uint64, int, int, error)) (kernelCell, error) {
	cell := kernelCell{Policy: policy}
	var refNs, fastNs int64
	var refDigest, fastDigest uint64
	var contacts, fuls int
	for rep := 0; rep < reps; rep++ {
		for _, reference := range []bool{true, false} {
			ns, digest, n, f, err := run(kernelConfig(policy, reference))
			if err != nil {
				return cell, err
			}
			if reference {
				if rep == 0 || ns < refNs {
					refNs = ns
				}
				refDigest = digest
			} else {
				if rep == 0 || ns < fastNs {
					fastNs = ns
				}
				fastDigest, contacts, fuls = digest, n, f
			}
		}
	}
	if contacts == 0 {
		return cell, fmt.Errorf("%s: no contacts simulated", policy)
	}
	cell.RefNsPerContact = float64(refNs) / float64(contacts)
	cell.FastNsPerContact = float64(fastNs) / float64(contacts)
	cell.Speedup = float64(refNs) / float64(fastNs)
	cell.Digest = fmt.Sprintf("%#016x", fastDigest)
	cell.DigestMatch = refDigest == fastDigest
	cell.ContactsSimulated = contacts
	cell.Fulfillments = fuls
	if !cell.DigestMatch {
		return cell, fmt.Errorf("%s: fast kernel digest %#x diverged from reference %#x",
			policy, fastDigest, refDigest)
	}
	return cell, nil
}

func runKernelRung(spec kernelRungSpec, reps int, gate bool) (*kernelRungReport, error) {
	m, err := kernelModel(spec)
	if err != nil {
		return nil, err
	}
	tr, err := materialize(m, spec)
	if err != nil {
		return nil, err
	}
	rung := &kernelRungReport{
		Nodes:       spec.nodes,
		Communities: spec.communities,
		Duration:    spec.duration,
		Contacts:    len(tr.Contacts),
	}
	// Untimed warm-up: first touch of the rung's heap footprint.
	if _, _, _, _, err := timeKernelRun(kernelConfig("static", false), tr, nil); err != nil {
		return nil, err
	}
	for _, policy := range []string{"static", "qcr"} {
		cell, err := measureCell(policy, reps, func(cfg sim.Config) (int64, uint64, int, int, error) {
			return timeKernelRun(cfg, tr, nil)
		})
		if err != nil {
			return nil, err
		}
		cell.GatedEventPath = gate && policy == "static"
		rung.Event = append(rung.Event, cell)
		fmt.Printf("N=%-7d %-7s ref %7.1f ns/contact  fast %7.1f ns/contact  speedup %.2fx  digest_match=%v\n",
			spec.nodes, policy, cell.RefNsPerContact, cell.FastNsPerContact, cell.Speedup, cell.DigestMatch)
		if cell.GatedEventPath && cell.Speedup < kernelMinSpeedup {
			return nil, fmt.Errorf("event path at N=%d: speedup %.2fx below the %.1fx gate",
				spec.nodes, cell.Speedup, kernelMinSpeedup)
		}
	}
	// Streamed end-to-end: generation + simulation through the bulk seam,
	// fresh source per run (its RNG drains). Recorded, never gated —
	// generation cost dilutes the kernel's share of the wall clock.
	streamed, err := measureCell("static-streamed", reps, func(cfg sim.Config) (int64, uint64, int, int, error) {
		src, err := rates.NewSharded(m, spec.duration, kernelSeed, 0)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		cfg.Policy = core.Static{Label: "uni"}
		return timeKernelRun(cfg, nil, src)
	})
	if err != nil {
		return nil, err
	}
	rung.Streamed = streamed
	fmt.Printf("N=%-7d %-7s ref %7.1f ns/contact  fast %7.1f ns/contact  speedup %.2fx  (end-to-end, ungated)\n",
		spec.nodes, "stream", streamed.RefNsPerContact, streamed.FastNsPerContact, streamed.Speedup)
	return rung, nil
}
