package adaptive

import (
	"math"
	"math/rand/v2"
	"testing"

	"impatience/internal/contact"
	"impatience/internal/core"
	"impatience/internal/demand"
	"impatience/internal/sim"
	"impatience/internal/utility"
	"impatience/internal/welfare"
)

func TestEstimatorRecoversNu(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for _, nu := range []float64{0.05, 0.2, 1} {
		var e NuEstimator
		for k := 0; k < 4000; k++ {
			age := rng.ExpFloat64() * 8 // arbitrary delay distribution
			consumed := rng.Float64() < math.Exp(-nu*age)
			e.Observe(age, consumed)
		}
		got, ok := e.Estimate()
		if !ok {
			t.Fatalf("ν=%g: no estimate", nu)
		}
		if math.Abs(got-nu) > 0.15*nu {
			t.Errorf("ν=%g: estimated %g", nu, got)
		}
	}
}

func TestEstimatorRefusesDegenerate(t *testing.T) {
	var e NuEstimator
	if _, ok := e.Estimate(); ok {
		t.Error("empty estimator produced a value")
	}
	for k := 0; k < 100; k++ {
		e.Observe(1, true) // all consumed → ν̂ would be 0
	}
	if _, ok := e.Estimate(); ok {
		t.Error("all-consumed estimator produced a value")
	}
	var e2 NuEstimator
	for k := 0; k < 100; k++ {
		e2.Observe(1, false)
	}
	if _, ok := e2.Estimate(); ok {
		t.Error("none-consumed estimator produced a value")
	}
	var e3 NuEstimator
	e3.Observe(-1, true)
	e3.Observe(math.NaN(), true)
	if e3.N() != 0 {
		t.Error("invalid ages recorded")
	}
}

func TestEstimatorNeedsMinSamples(t *testing.T) {
	var e NuEstimator
	rng := rand.New(rand.NewPCG(3, 4))
	for k := 0; k < MinObservations-1; k++ {
		age := rng.ExpFloat64()
		e.Observe(age, rng.Float64() < math.Exp(-0.5*age))
	}
	if _, ok := e.Estimate(); ok {
		t.Error("estimate below minimum sample size")
	}
}

// End to end: an adaptive policy that does not know ν approaches the
// welfare of a QCR tuned with the true ν.
func TestAdaptivePolicyConvergence(t *testing.T) {
	const (
		nodes = 30
		items = 20
		mu    = 0.05
		rho   = 3
		nu    = 0.1
	)
	truth := utility.Exponential{Nu: nu}
	pop := demand.Pareto(items, 1, 2)
	tr, err := contact.GenerateHomogeneous(nodes, mu, 8000, rand.New(rand.NewPCG(5, 6)))
	if err != nil {
		t.Fatal(err)
	}
	feedbackRNG := rand.New(rand.NewPCG(7, 8))
	adaptivePolicy := &Policy{
		Feedback: func(item int, age float64) bool {
			return feedbackRNG.Float64() < truth.H(age)
		},
		Mu: mu, Servers: nodes, Scale: 0.1,
		Inner: &core.QCR{MandateRouting: true, StrictSource: true, MaxMandates: 5, Seed: 9},
	}
	if err := adaptivePolicy.Validate(); err != nil {
		t.Fatal(err)
	}
	resA, err := sim.Run(sim.Config{
		Rho: rho, Utility: truth, Pop: pop, Trace: tr, Policy: adaptivePolicy,
		Seed: 10, WarmupFrac: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	oracle := &core.QCR{
		Reaction:       core.TunedReaction(truth, mu, nodes, 0.1),
		MandateRouting: true, StrictSource: true, MaxMandates: 5, Seed: 9,
	}
	resO, err := sim.Run(sim.Config{
		Rho: rho, Utility: truth, Pop: pop, Trace: tr, Policy: oracle,
		Seed: 10, WarmupFrac: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	nuHat, ok := adaptivePolicy.LastEstimate()
	if !ok {
		t.Fatal("no ν estimate after a full run")
	}
	if math.Abs(nuHat-nu) > 0.5*nu {
		t.Errorf("ν̂=%g, true %g", nuHat, nu)
	}
	if resA.AvgUtilityRate < 0.85*resO.AvgUtilityRate {
		t.Errorf("adaptive %g below 85%% of oracle %g", resA.AvgUtilityRate, resO.AvgUtilityRate)
	}
	t.Logf("ν̂=%.4f (true %.2f, %d obs); adaptive %.4f vs oracle %.4f",
		nuHat, nu, adaptivePolicy.Observations(), resA.AvgUtilityRate, resO.AvgUtilityRate)
	// Sanity against the analytic optimum.
	h := welfare.Homogeneous{Utility: truth, Pop: pop, Mu: mu, Servers: nodes, Clients: nodes, PureP2P: true}
	opt, err := h.GreedyOptimal(rho)
	if err != nil {
		t.Fatal(err)
	}
	if resA.AvgUtilityRate > h.WelfareCounts(opt)*1.1 {
		t.Errorf("adaptive beat the analytic optimum %g by >10%%: %g", h.WelfareCounts(opt), resA.AvgUtilityRate)
	}
}

func TestAdaptiveValidate(t *testing.T) {
	p := &Policy{}
	if err := p.Validate(); err == nil {
		t.Error("nil inner accepted")
	}
	p.Inner = &core.QCR{}
	if err := p.Validate(); err == nil {
		t.Error("zero µ accepted")
	}
}
