// Package meanfield integrates the replica-dynamics ODE of Section 5.2
// (Eq. 7), the fluid limit of Query Counting Replication:
//
//	dx_i/dt = d_i·ψ(S/x_i) − x_i/(ρS) · Σ_j d_j·ψ(S/x_j)
//
// Creation (each fulfilled request for item i spawns ψ(counter) replicas,
// with E[counter] = S/x_i) balances deletion (random cache replacement
// erases item i proportionally to its share of the global cache). Its
// stable fixed point satisfies the balance condition of Property 1 when ψ
// is the Property-2 reaction function — this package exists to verify
// that claim numerically and to support the convergence ablation.
package meanfield

import (
	"fmt"
	"math"

	"impatience/internal/demand"
	"impatience/internal/numeric"
	"impatience/internal/utility"
)

// System describes the fluid-limit dynamics.
type System struct {
	Utility utility.Function
	Pop     demand.Popularity
	Mu      float64 // contact rate used to tune ψ
	Servers int     // |S|
	Rho     int     // per-server cache slots
	// PsiScale multiplies the reaction function; it rescales time but not
	// the fixed point. 1 by default.
	PsiScale float64
}

// Validate reports structural errors.
func (s System) Validate() error {
	switch {
	case s.Utility == nil:
		return fmt.Errorf("meanfield: nil utility")
	case s.Mu <= 0:
		return fmt.Errorf("meanfield: µ=%g", s.Mu)
	case s.Servers <= 0 || s.Rho <= 0:
		return fmt.Errorf("meanfield: servers=%d rho=%d", s.Servers, s.Rho)
	case s.Pop.Items() == 0:
		return fmt.Errorf("meanfield: empty catalog")
	}
	return nil
}

func (s System) psiScale() float64 {
	if s.PsiScale > 0 {
		return s.PsiScale
	}
	return 1
}

// Derivs evaluates the right-hand side of Eq. 7. Replica counts are
// clamped below at a small floor (the sticky replica of the simulator)
// to keep ψ(S/x) finite.
func (s System) Derivs(_ float64, x, dst []float64) {
	S := float64(s.Servers)
	cap := float64(s.Servers * s.Rho)
	scale := s.psiScale()
	var churn float64 // Σ_j d_j ψ(S/x_j)
	creation := make([]float64, len(x))
	for j, d := range s.Pop.Rates {
		xj := math.Max(x[j], minReplicas)
		c := d * scale * utility.Psi(s.Utility, s.Mu, S, S/xj)
		creation[j] = c
		churn += c
	}
	for i := range x {
		xi := math.Max(x[i], minReplicas)
		dst[i] = creation[i] - xi/cap*churn
	}
}

// minReplicas is the sticky-replica floor of the fluid model.
const minReplicas = 1e-3

// Run integrates the dynamics from x0 for horizon time units with the
// given step, returning the final state. The state is clamped to the
// sticky-replica floor after every step: the fluid limit keeps x_i > 0
// exactly, but a finite step can overshoot, and a negative replica count
// is meaningless (and poisons downstream welfare evaluation).
func (s System) Run(x0 []float64, horizon, step float64) ([]float64, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if len(x0) != s.Pop.Items() {
		return nil, fmt.Errorf("meanfield: state has %d items, demand %d", len(x0), s.Pop.Items())
	}
	if step <= 0 || step > horizon {
		step = horizon / 100
	}
	x := append([]float64(nil), x0...)
	t := 0.0
	for t < horizon {
		h := math.Min(step, horizon-t)
		x = numeric.RK4(s.Derivs, x, t, t+h, 1)
		for i := range x {
			if x[i] < minReplicas {
				x[i] = minReplicas
			}
		}
		t += h
	}
	return x, nil
}

// RunToSteadyState integrates until the relative derivative norm falls
// below tol or the horizon is exhausted; it returns the state and whether
// convergence was reached.
func (s System) RunToSteadyState(x0 []float64, horizon, step, tol float64) ([]float64, bool, error) {
	if err := s.Validate(); err != nil {
		return nil, false, err
	}
	if len(x0) != s.Pop.Items() {
		return nil, false, fmt.Errorf("meanfield: state has %d items, demand %d", len(x0), s.Pop.Items())
	}
	dst := make([]float64, len(x0))
	converged := false
	x, _ := numeric.RK4Until(s.Derivs, x0, 0, horizon, step, func(t float64, x []float64) bool {
		s.Derivs(t, x, dst)
		var dn, xn float64
		for i := range dst {
			dn += dst[i] * dst[i]
			xn += x[i] * x[i]
		}
		if dn <= tol*tol*math.Max(xn, 1) {
			converged = true
			return true
		}
		return false
	})
	return x, converged, nil
}

// UniformStart returns the natural initial condition: the global cache
// split evenly across the catalog.
func (s System) UniformStart() []float64 {
	x := make([]float64, s.Pop.Items())
	per := float64(s.Servers*s.Rho) / float64(len(x))
	for i := range x {
		x[i] = per
	}
	return x
}
