package numeric

import (
	"math"
	"testing"
)

func TestRK45Exponential(t *testing.T) {
	// dx/dt = -x, x(0)=1 ⇒ x(2) = e^{-2}.
	f := func(_ float64, x, dst []float64) { dst[0] = -x[0] }
	got, stats, err := RK45(f, []float64{1}, 0, 2, RKOpts{RTol: 1e-8, ATol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Exp(-2)
	if math.Abs(got[0]-want) > 1e-7 {
		t.Errorf("x(2) = %.12f, want %.12f", got[0], want)
	}
	if stats.Steps == 0 || stats.Evals == 0 {
		t.Errorf("no work recorded: %+v", stats)
	}
}

func TestRK45Harmonic(t *testing.T) {
	// x'' = -x from (1, 0) over [0, π] ⇒ (-1, 0).
	f := func(_ float64, x, dst []float64) { dst[0], dst[1] = x[1], -x[0] }
	got, _, err := RK45(f, []float64{1, 0}, 0, math.Pi, RKOpts{RTol: 1e-9, ATol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]+1) > 1e-7 || math.Abs(got[1]) > 1e-7 {
		t.Errorf("x(π) = (%.9f, %.9f), want (-1, 0)", got[0], got[1])
	}
}

// TestRK45ToleranceConvergence is the adaptive analogue of step halving:
// tightening the tolerance by 100× must shrink the global error and
// increase the accepted step count, order after order.
func TestRK45ToleranceConvergence(t *testing.T) {
	f := func(tt float64, x, dst []float64) { dst[0] = math.Cos(tt) * x[0] } // x(t) = e^{sin t}
	want := math.Exp(math.Sin(5))
	prevErr := math.Inf(1)
	prevSteps := 0
	for _, rtol := range []float64{1e-3, 1e-5, 1e-7, 1e-9} {
		got, stats, err := RK45(f, []float64{1}, 0, 5, RKOpts{RTol: rtol, ATol: rtol * 1e-3})
		if err != nil {
			t.Fatal(err)
		}
		e := math.Abs(got[0] - want)
		if e >= prevErr && e > 1e-12 {
			t.Errorf("rtol=%g: error %g did not shrink from %g", rtol, e, prevErr)
		}
		if stats.Steps < prevSteps {
			t.Errorf("rtol=%g: %d steps, fewer than %d at the looser tolerance", rtol, stats.Steps, prevSteps)
		}
		prevErr, prevSteps = e, stats.Steps
	}
	if prevErr > 1e-9 {
		t.Errorf("tightest tolerance left error %g", prevErr)
	}
}

// TestRK45StepHalvingAgreement pins the classical property test: the
// same integration with MaxStep h and h/2 must agree to within the
// requested tolerance (the controller, not the cap, sets the accuracy).
func TestRK45StepHalvingAgreement(t *testing.T) {
	f := func(_ float64, x, dst []float64) {
		dst[0] = x[1]
		dst[1] = -4*x[0] - 0.1*x[1]
	}
	x0 := []float64{1, 0}
	a, _, err := RK45(f, x0, 0, 10, RKOpts{RTol: 1e-8, MaxStep: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := RK45(f, x0, 0, 10, RKOpts{RTol: 1e-8, MaxStep: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-6 {
			t.Errorf("component %d: MaxStep 0.5 → %.10f, 0.25 → %.10f", i, a[i], b[i])
		}
	}
}

func TestRK45RejectsStiffStep(t *testing.T) {
	// Fast decay: a large initial step must be rejected, not accepted
	// with garbage.
	f := func(_ float64, x, dst []float64) { dst[0] = -200 * x[0] }
	got, stats, err := RK45(f, []float64{1}, 0, 1, RKOpts{RTol: 1e-6, InitStep: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rejected == 0 {
		t.Error("0.5 step on dx=-200x was never rejected")
	}
	if math.Abs(got[0]-math.Exp(-200)) > 1e-6 {
		t.Errorf("x(1) = %g, want ~0", got[0])
	}
}

func TestRK45ClampApplied(t *testing.T) {
	f := func(_ float64, x, dst []float64) { dst[0] = -5 }
	floor := 0.25
	got, _, err := RK45(f, []float64{1}, 0, 10, RKOpts{
		RTol: 1e-6,
		Clamp: func(x []float64) {
			if x[0] < floor {
				x[0] = floor
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != floor {
		t.Errorf("clamped state = %g, want %g", got[0], floor)
	}
}

func TestRK45DoesNotModifyInput(t *testing.T) {
	f := func(_ float64, x, dst []float64) { dst[0] = x[0] }
	x0 := []float64{2}
	if _, _, err := RK45(f, x0, 0, 1, RKOpts{}); err != nil {
		t.Fatal(err)
	}
	if x0[0] != 2 {
		t.Errorf("input modified: %g", x0[0])
	}
}

func TestStepperResumes(t *testing.T) {
	// Advancing 0→1→2 must land within tolerance of advancing 0→2.
	f := func(_ float64, x, dst []float64) { dst[0] = -x[0] }
	s := NewStepper(f, []float64{1}, 0, RKOpts{RTol: 1e-8, ATol: 1e-12})
	if err := s.AdvanceTo(1); err != nil {
		t.Fatal(err)
	}
	if err := s.AdvanceTo(2); err != nil {
		t.Fatal(err)
	}
	if err := s.AdvanceTo(1.5); err != nil { // past target: no-op
		t.Fatal(err)
	}
	if got, want := s.State()[0], math.Exp(-2); math.Abs(got-want) > 1e-7 {
		t.Errorf("staged advance x(2) = %.12f, want %.12f", got, want)
	}
	if s.Time() != 2 {
		t.Errorf("time %g after no-op advance, want 2", s.Time())
	}
}

func TestRK45NonFiniteBlowup(t *testing.T) {
	f := func(_ float64, x, dst []float64) { dst[0] = x[0] * x[0] } // blows up at t=1
	_, _, err := RK45(f, []float64{1}, 0, 2, RKOpts{RTol: 1e-6, MaxSteps: 100000})
	if err == nil {
		t.Error("finite-time blowup integrated without error")
	}
}

// coupledSystem is a meanfield-shaped nonlinear test system: n competing
// species with a shared capacity, the same coupling structure as the
// replica ODE.
func coupledSystem(n int) (Derivs, []float64) {
	x0 := make([]float64, n)
	for i := range x0 {
		x0[i] = 1 + float64(i%7)/7
	}
	return func(_ float64, x, dst []float64) {
		var tot float64
		for _, v := range x {
			tot += v
		}
		for i := range x {
			dst[i] = x[i] * (float64(i%5+1) - tot/float64(n))
		}
	}, x0
}

func BenchmarkRK45Coupled64(b *testing.B) {
	f, x0 := coupledSystem(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := RK45(f, x0, 0, 10, RKOpts{RTol: 1e-6}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRK4FixedCoupled64(b *testing.B) {
	f, x0 := coupledSystem(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		RK4(f, x0, 0, 10, 1000)
	}
}
